"""A simulated disk: records laid out on fixed-size pages.

A *record* is an opaque byte blob (one serialized tree node, including its
inverted-file block) occupying ``ceil(len / page_size)`` contiguous pages.
Reading a record through the disk manager charges one simulated I/O per
occupied page — matching the evaluation methodology of the paper, where a
node visit costs 1 I/O and a posting block costs one per page.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..errors import StorageError
from .iostats import IOStats
from .page import DEFAULT_PAGE_SIZE


class DiskManager:
    """Page-addressed record store with strict I/O accounting."""

    def __init__(
        self, page_size: int = DEFAULT_PAGE_SIZE, stats: Optional[IOStats] = None
    ) -> None:
        if page_size < 64:
            raise StorageError(f"page_size must be >= 64, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._records: Dict[int, bytes] = {}
        self._record_pages: Dict[int, int] = {}
        self._next_record_id = 0
        self._next_page_id = 0

    # ------------------------------------------------------------------
    # Allocation / write path
    # ------------------------------------------------------------------

    def allocate(self, data: bytes) -> int:
        """Store ``data`` as a new record; returns its record id."""
        record_id = self._next_record_id
        self._next_record_id += 1
        pages = self._page_span(data)
        self._records[record_id] = data
        self._record_pages[record_id] = pages
        self._next_page_id += pages
        self.stats.record_write(pages)
        return record_id

    def rewrite(self, record_id: int, data: bytes) -> None:
        """Replace a record's contents (page span may change)."""
        if record_id not in self._records:
            raise StorageError(f"unknown record id {record_id}")
        old_pages = self._record_pages[record_id]
        new_pages = self._page_span(data)
        self._records[record_id] = data
        self._record_pages[record_id] = new_pages
        if new_pages > old_pages:
            self._next_page_id += new_pages - old_pages
        self.stats.record_write(new_pages)

    def free(self, record_id: int) -> None:
        """Release a record's pages (node deleted from an index)."""
        if record_id not in self._records:
            raise StorageError(f"unknown record id {record_id}")
        del self._records[record_id]
        del self._record_pages[record_id]

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read(self, record_id: int, tag: str = "") -> bytes:
        """Fetch a record, charging one read I/O per occupied page."""
        try:
            data = self._records[record_id]
        except KeyError:
            raise StorageError(f"unknown record id {record_id}") from None
        self.stats.record_read(self._record_pages[record_id], tag)
        return data

    def record_pages(self, record_id: int) -> int:
        """Number of pages the record occupies."""
        try:
            return self._record_pages[record_id]
        except KeyError:
            raise StorageError(f"unknown record id {record_id}") from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def record_count(self) -> int:
        """Number of live records."""
        return len(self._records)

    @property
    def total_pages(self) -> int:
        """Total pages ever allocated (the index footprint)."""
        return sum(self._record_pages.values())

    @property
    def total_bytes(self) -> int:
        """Sum of live record payload sizes."""
        return sum(len(d) for d in self._records.values())

    def record_ids(self) -> List[int]:
        """Live record ids, ascending."""
        return sorted(self._records)

    def _page_span(self, data: bytes) -> int:
        return max(1, math.ceil(len(data) / self.page_size))
