"""Simulated I/O accounting.

One logical read of a page that is not in the buffer pool costs one I/O;
a node whose serialized form spans ``n`` pages costs ``n``.  Writes during
index construction are tracked separately so query-time numbers stay
clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IOStats:
    """Mutable counters shared by a disk manager and its buffer pool."""

    reads: int = 0
    writes: int = 0
    buffer_hits: int = 0
    by_tag: Dict[str, int] = field(default_factory=dict)

    def record_read(self, pages: int = 1, tag: str = "") -> None:
        """Charge ``pages`` read I/Os, optionally under a tag."""
        self.reads += pages
        if tag:
            self.by_tag[tag] = self.by_tag.get(tag, 0) + pages

    def record_write(self, pages: int = 1) -> None:
        """Charge `pages` write I/Os."""
        self.writes += pages

    def record_hit(self, pages: int = 1) -> None:
        """Record `pages` served from the buffer (no I/O)."""
        self.buffer_hits += pages

    def reset(self) -> None:
        """Zero all counters (called between measured queries)."""
        self.reads = 0
        self.writes = 0
        self.buffer_hits = 0
        self.by_tag.clear()

    def snapshot(self) -> Dict[str, int]:
        """A copy of the counters for experiment logging."""
        out = {
            "reads": self.reads,
            "writes": self.writes,
            "buffer_hits": self.buffer_hits,
        }
        for tag, count in self.by_tag.items():
            out[f"reads.{tag}"] = count
        return out
