"""Spatial substrate: points, rectangles (MBRs) and proximity scores.

Everything in this package is pure geometry — no index or similarity logic.
"""

from .point import Point
from .rect import Rect
from .proximity import SpatialProximity

__all__ = ["Point", "Rect", "SpatialProximity"]
