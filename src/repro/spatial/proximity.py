"""Normalized spatial proximity, Equation-style ``SimS = 1 - d / maxD``.

``maxD`` is the diameter of the data space (the maximum distance between
any two points in the dataset, or of a declared bounding region).  The
normalization puts spatial proximity on the same ``[0, 1]`` scale as text
similarity so the two can be blended with ``alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .point import Point
from .rect import Rect


@dataclass(frozen=True)
class SpatialProximity:
    """Converts distances into ``[0, 1]`` proximity scores.

    Attributes:
        max_distance: The normalization diameter ``maxD``.  Distances above
            ``maxD`` clamp to proximity 0, which keeps the score well
            defined for query points slightly outside the data MBR.
    """

    max_distance: float

    def __post_init__(self) -> None:
        if self.max_distance <= 0.0:
            raise ConfigError(
                f"max_distance must be positive, got {self.max_distance}"
            )

    @staticmethod
    def for_region(region: Rect) -> "SpatialProximity":
        """Proximity normalized by the diagonal of ``region``."""
        diag = region.diagonal()
        if diag == 0.0:
            # All objects colocated: any distance of 0 maps to 1; pick a
            # unit diameter so distinct query points still score sanely.
            diag = 1.0
        return SpatialProximity(diag)

    def from_distance(self, distance: float) -> float:
        """Map a distance to proximity ``1 - d/maxD``, clamped to [0, 1]."""
        if distance < 0.0:
            raise ConfigError(f"distance must be non-negative, got {distance}")
        score = 1.0 - distance / self.max_distance
        if score < 0.0:
            return 0.0
        if score > 1.0:
            return 1.0
        return score

    def between(self, a: Point, b: Point) -> float:
        """Proximity between two points."""
        return self.from_distance(a.distance_to(b))

    def upper_bound(self, a: Rect, b: Rect) -> float:
        """Largest possible proximity between any point pair of two MBRs."""
        return self.from_distance(a.min_dist(b))

    def lower_bound(self, a: Rect, b: Rect) -> float:
        """Smallest possible proximity between any point pair of two MBRs."""
        return self.from_distance(a.max_dist(b))
