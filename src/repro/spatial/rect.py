"""Axis-aligned rectangles (MBRs) and the distance algebra used by bounds.

The branch-and-bound algorithm of the paper leans on two quantities between
minimum bounding rectangles:

* ``min_dist(A, B)`` — the smallest possible distance between a point of A
  and a point of B (0 if they intersect); and
* ``max_dist(A, B)`` — the largest possible distance between a point of A
  and a point of B (realized at opposite corners).

Both are exact for axis-aligned boxes and proven tight by the property
tests in ``tests/test_rect_properties.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from ..errors import ConfigError
from .point import Point


@dataclass(frozen=True, order=True)
class Rect:
    """An immutable, possibly degenerate axis-aligned rectangle.

    Degenerate rectangles (``xlo == xhi`` and/or ``ylo == yhi``) represent
    points and segments; the R-tree stores object points this way.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ConfigError(
                f"malformed Rect: ({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_point(p: Point) -> "Rect":
        """A degenerate rectangle covering exactly ``p``."""
        return Rect(p.x, p.y, p.x, p.y)

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """The MBR of a non-empty collection of points."""
        pts = list(points)
        if not pts:
            raise ConfigError("Rect.from_points requires at least one point")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def union_all(rects: Iterable["Rect"]) -> "Rect":
        """The MBR enclosing every rectangle in a non-empty collection."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ConfigError("Rect.union_all requires at least one rect") from None
        xlo, ylo, xhi, yhi = first.xlo, first.ylo, first.xhi, first.yhi
        for r in it:
            xlo = min(xlo, r.xlo)
            ylo = min(ylo, r.ylo)
            xhi = max(xhi, r.xhi)
            yhi = max(yhi, r.yhi)
        return Rect(xlo, ylo, xhi, yhi)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.yhi - self.ylo

    def area(self) -> float:
        """Area (0 for degenerate rectangles)."""
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter; the R*-style split heuristic minimizes this."""
        return self.width + self.height

    def diagonal(self) -> float:
        """Length of the main diagonal == ``max_dist(self, self)``."""
        return math.hypot(self.width, self.height)

    def center(self) -> Point:
        """The rectangle's center point."""
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    def corners(self) -> List[Point]:
        """The four corner points (duplicates possible when degenerate)."""
        return [
            Point(self.xlo, self.ylo),
            Point(self.xlo, self.yhi),
            Point(self.xhi, self.ylo),
            Point(self.xhi, self.yhi),
        ]

    def is_point(self) -> bool:
        """True when the rectangle is a single point."""
        return self.xlo == self.xhi and self.ylo == self.yhi

    def __iter__(self) -> Iterator[float]:
        yield self.xlo
        yield self.ylo
        yield self.xhi
        yield self.yhi

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """(xlo, ylo, xhi, yhi)."""
        return (self.xlo, self.ylo, self.xhi, self.yhi)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True when the point lies inside (boundary inclusive)."""
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """True when the other rectangle lies fully inside."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and self.xhi >= other.xhi
            and self.yhi >= other.yhi
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the rectangles share any point."""
        return not (
            self.xhi < other.xlo
            or other.xhi < self.xlo
            or self.yhi < other.ylo
            or other.yhi < self.ylo
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of overlap (0 when disjoint)."""
        w = min(self.xhi, other.xhi) - max(self.xlo, other.xlo)
        h = min(self.yhi, other.yhi) - max(self.ylo, other.ylo)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other`` (R-tree ChooseLeaf)."""
        return self.union(other).area() - self.area()

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def min_dist_point(self, p: Point) -> float:
        """Smallest distance from ``p`` to any point of the rectangle."""
        dx = max(self.xlo - p.x, 0.0, p.x - self.xhi)
        dy = max(self.ylo - p.y, 0.0, p.y - self.yhi)
        return math.hypot(dx, dy)

    def max_dist_point(self, p: Point) -> float:
        """Largest distance from ``p`` to any point of the rectangle.

        Realized at the corner farthest from ``p`` in both axes.
        """
        dx = max(abs(p.x - self.xlo), abs(p.x - self.xhi))
        dy = max(abs(p.y - self.ylo), abs(p.y - self.yhi))
        return math.hypot(dx, dy)

    def min_dist(self, other: "Rect") -> float:
        """Smallest distance between a point of ``self`` and of ``other``."""
        dx = max(self.xlo - other.xhi, 0.0, other.xlo - self.xhi)
        dy = max(self.ylo - other.yhi, 0.0, other.ylo - self.yhi)
        return math.hypot(dx, dy)

    def max_dist(self, other: "Rect") -> float:
        """Largest distance between a point of ``self`` and of ``other``.

        Per axis, the extreme separation is between opposite-facing edges:
        ``max(|self.hi - other.lo|, |other.hi - self.lo|)``.
        """
        dx = max(abs(self.xhi - other.xlo), abs(other.xhi - self.xlo))
        dy = max(abs(self.yhi - other.ylo), abs(other.yhi - self.ylo))
        return math.hypot(dx, dy)

    def min_max_dist(self, other: "Rect") -> float:
        """An upper bound on the distance from the *best-placed* point of
        ``self`` to the farthest point of ``other``.

        Used by the tight self/one-object refinements: there exists a point
        in ``self`` (its center) whose distance to every point of ``other``
        is at most this value.
        """
        return self.center().distance_to(other.center()) + other.diagonal() / 2.0
