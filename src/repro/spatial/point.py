"""2-D point with exact Euclidean geometry helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point.

    Points order lexicographically by ``(x, y)``, which gives tests and
    tie-breaking a deterministic total order.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt where possible)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance; used by a few workload generators."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    @staticmethod
    def midpoint(a: "Point", b: "Point") -> "Point":
        """Midpoint of the segment ``ab``."""
        return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
