"""Asyncio HTTP front door for the sharded scatter–gather searcher.

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` streams and
``json`` — no framework, no dependency — fronting a
:class:`ShardQueryService`, which lifts PR 5's reliability policies to
per-shard granularity: every admitted shard's round-1 search runs
through that shard's own :class:`~repro.service.QueryService`, so one
slow or faulty shard degrades (fused → snapshot → seed) or deadlines
*individually* while the other shards answer normally, and the shared
deadline budget spans the whole scatter–gather (admission, scatter,
merge) the same way a single service call spans its degradation chain.

Endpoints (all JSON):

* ``POST /search`` — body ``{"x": .., "y": .., "text": "..", "k": ..}``
  (optional ``"deadline_seconds"``); answers ``{"ids": [...], "k": ..,
  "stats": {...}, "degraded": {...}}``.  The id list is bit-identical
  to the unsharded snapshot engine's answer (the scatter–gather parity
  guarantee).
* ``GET /healthz`` — liveness plus shard fan-out.
* ``GET /metrics`` — the service's metrics-registry snapshot.

Admission shedding: at most ``max_pending`` requests may be in flight;
beyond that the server answers ``503 {"error": "shed"}`` immediately
(the HTTP analogue of :class:`~repro.service.AdmissionQueue`'s
``QueueFull``), counted as ``shard.http.shed``.  Deadline overruns map
to ``504``, malformed requests to ``400``.

Start it from the CLI: ``repro-rstknn serve-http --n 2000 --shards 4``
(see the README quickstart), or in-process via :func:`serve` /
:meth:`ShardHttpServer.start` for tests.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DeadlineExceeded, QueryError, ReproError
from ..spatial import Point
from ..obs import NULL_REGISTRY, MetricsRegistry
from ..service import DEGRADATION_CHAIN, QueryService
from .scatter import ScatterGatherSearcher, ShardQueryStats, ShardSearchResult

_MAX_BODY_BYTES = 1 << 20  # 1 MiB: queries are tiny; refuse absurd bodies


class ShardQueryService:
    """Per-shard reliability policies around the scatter–gather search.

    Wraps a :class:`~repro.shard.scatter.ScatterGatherSearcher` and one
    :class:`~repro.service.QueryService` **per shard**: shard admission
    (summary pruning) stays the searcher's, round 1 is served through
    each admitted shard's own service (deadline + degradation chain per
    shard, all chain engines being parity-identical), and round 2 is
    the searcher's exact merge.  Answers therefore keep the
    scatter–gather bit-parity guarantee while gaining per-shard
    fault isolation.
    """

    def __init__(
        self,
        searcher: ScatterGatherSearcher,
        *,
        chain: Sequence[str] = DEGRADATION_CHAIN,
        deadline_seconds: Optional[float] = None,
        max_pending: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.searcher = searcher
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.deadline_seconds = deadline_seconds
        self.services = [
            QueryService(
                shard.tree,
                searcher.config,
                searcher.te_weight,
                chain=chain,
                deadline_seconds=deadline_seconds,
                max_pending=max_pending,
                metrics=metrics,
            )
            for shard in searcher.index.shards
        ]

    def make_query(self, x: float, y: float, text: str):
        """Build a query object against the parent dataset's vocabulary
        (shared by every shard, so similarity values are global)."""
        return self.searcher.index.dataset.make_query(Point(x, y), text)

    def serve(
        self,
        query,
        k: int,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> Tuple[ShardSearchResult, Dict[str, object]]:
        """Scatter through per-shard services, merge exactly.

        Returns the merged :class:`ShardSearchResult` plus a
        degradation report ``{"shards": {sid: path}, "engines": {sid:
        name}}`` covering every searched shard.

        Raises:
            DeadlineExceeded: some shard overran the (shared) deadline.
            QueryError: invalid ``k`` or query.
            ServiceError: a shard exhausted its degradation chain.
        """
        import time  # noqa: PLC0415 — local to keep module import light

        searcher = self.searcher
        started = time.perf_counter()
        deadline = (
            deadline_seconds
            if deadline_seconds is not None
            else self.deadline_seconds
        )
        stats = ShardQueryStats(shards_total=len(searcher.index))
        admitted, pruned = searcher._admit(query, k)
        stats.shards_searched = len(admitted)
        stats.shards_pruned = len(pruned)
        candidates: List[Tuple[int, int]] = []
        degraded: Dict[str, object] = {"shards": {}, "engines": {}}
        for sid in admitted:
            remaining = None
            if deadline is not None:
                spent = time.perf_counter() - started
                remaining = max(deadline - spent, 1e-9)
            served = self.services[sid].serve(
                query, k, deadline_seconds=remaining
            )
            degraded["engines"][sid] = served.engine
            if served.degraded_path:
                degraded["shards"][sid] = list(served.degraded_path)
            candidates.extend((sid, oid) for oid in served.ids)
        stats.candidates = len(candidates)
        ids = searcher._merge(query, k, candidates, stats)
        stats.search.result_count = len(ids)
        stats.elapsed_seconds = time.perf_counter() - started
        m = self.metrics
        m.counter("shard.queries").inc()
        m.counter("shard.searched").inc(stats.shards_searched)
        m.counter("shard.pruned").inc(stats.shards_pruned)
        m.counter("shard.candidates").inc(stats.candidates)
        m.counter("shard.merge.probes").inc(stats.merge_probes)
        return ShardSearchResult(ids=ids, stats=stats), degraded


def _response(
    status: int, payload: Dict[str, object], reason: str = ""
) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 503: "Service Unavailable",
               504: "Gateway Timeout", 500: "Internal Server Error"}
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reason or reasons.get(status, 'OK')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class ShardHttpServer:
    """The asyncio front door: routes, shedding, error mapping."""

    def __init__(
        self,
        service: ShardQueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 8764,
        default_k: int = 5,
        max_pending: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.default_k = default_k
        self.metrics = (
            metrics
            if metrics is not None
            else (service.metrics or NULL_REGISTRY)
        )
        self._sem = asyncio.Semaphore(max_pending)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "asyncio.AbstractServer":
        """Bind and start serving; returns the asyncio server object."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        return self._server

    async def stop(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > _MAX_BODY_BYTES:
            raise ValueError("body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.counter("shard.http.requests").inc()
        try:
            method, path, body = await self._read_request(reader)
        except (ValueError, asyncio.IncompleteReadError) as exc:
            writer.write(_response(400, {"error": str(exc)}))
            await writer.drain()
            writer.close()
            return
        try:
            payload = await self._route(method, path, body)
        except _HttpError as exc:
            payload = (exc.status, exc.payload)
        except Exception as exc:  # noqa: BLE001 — report, don't crash loop
            payload = (500, {"error": f"{type(exc).__name__}: {exc}"})
        writer.write(_response(payload[0], payload[1]))
        await writer.drain()
        writer.close()

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, {"error": "GET only"})
            return 200, {
                "status": "ok",
                "shards": len(self.service.searcher.index),
            }
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, {"error": "GET only"})
            return 200, self.metrics.snapshot()
        if path == "/search":
            if method != "POST":
                raise _HttpError(405, {"error": "POST only"})
            return await self._search(body)
        raise _HttpError(404, {"error": f"no route {path!r}"})

    async def _search(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        try:
            req = json.loads(body.decode("utf-8"))
            x = float(req["x"])
            y = float(req["y"])
            text = str(req.get("text", ""))
            k = int(req.get("k", self.default_k))
            deadline = req.get("deadline_seconds")
            deadline = None if deadline is None else float(deadline)
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise _HttpError(
                400, {"error": f"bad search request: {exc}"}
            ) from exc
        if self._sem.locked():
            self.metrics.counter("shard.http.shed").inc()
            raise _HttpError(503, {"error": "shed"})
        async with self._sem:
            loop = asyncio.get_running_loop()
            query = self.service.make_query(x, y, text)
            try:
                result, degraded = await loop.run_in_executor(
                    None,
                    lambda: self.service.serve(
                        query, k, deadline_seconds=deadline
                    ),
                )
            except DeadlineExceeded as exc:
                raise _HttpError(504, {"error": str(exc)}) from exc
            except (QueryError, ValueError) as exc:
                raise _HttpError(400, {"error": str(exc)}) from exc
            except ReproError as exc:
                raise _HttpError(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                ) from exc
        return 200, {
            "ids": list(result.ids),
            "k": k,
            "stats": result.stats.as_dict(),
            "degraded": degraded,
        }


class _HttpError(Exception):
    """Internal routing error carrying its HTTP mapping."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


async def serve(
    service: ShardQueryService,
    *,
    host: str = "127.0.0.1",
    port: int = 8764,
    default_k: int = 5,
    max_pending: int = 64,
    metrics: Optional[MetricsRegistry] = None,
    ready: Optional["asyncio.Event"] = None,
) -> None:
    """Run the front door until cancelled.

    ``ready`` (if given) is set once the socket is bound — tests use it
    to race-free connect; the possibly-rebound port is on the server
    object meanwhile.
    """
    server = ShardHttpServer(
        service,
        host=host,
        port=port,
        default_k=default_k,
        max_pending=max_pending,
        metrics=metrics,
    )
    await server.start()
    if ready is not None:
        ready.set()
    try:
        async with server._server:
            await server._server.serve_forever()
    finally:
        await server.stop()


async def fetch_json(
    host: str,
    port: int,
    path: str,
    payload: Optional[Dict[str, object]] = None,
) -> Tuple[int, Dict[str, object]]:
    """Tiny asyncio HTTP client for tests and the CLI self-test.

    ``payload`` switches GET → POST.  Returns ``(status, body)``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    if payload is None:
        head = f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n"
        writer.write(head.encode("ascii"))
    else:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    raw = await reader.readexactly(length) if length else b"{}"
    writer.close()
    return status, json.loads(raw.decode("utf-8"))
