"""Morton-partitioned shard planning and per-shard index construction.

:class:`ShardPlanner` splits a dataset into ``S`` spatially coherent
shards by sorting objects along the same Morton curve the fused engine
uses to group queries (:func:`repro.core.fused.locality_order`) and
cutting the order into ``S`` balanced contiguous runs.  Spatial
coherence is what makes shard admission pruning
(:mod:`repro.shard.summaries`) bite: a shard whose objects cluster
tightly has a tight frontier MBR and a high within-shard competitor
floor, so queries far from the cluster are rejected at admission.

Each shard is its own :class:`~repro.model.dataset.STDataset` built
**from the parent's objects, vocabulary, region, and config** — never
re-derived.  This is the bit-parity keystone: ``SimST`` depends on the
dataset-wide ``maxD`` (from the region) and on corpus-global term
weights (from the vocabulary), so shard-local similarity values are
bit-identical to the unsharded index's, and the exact merge round
(:mod:`repro.shard.merge`) can compare them against unsharded results
without tolerance.

Shard trees are ordinary (C)IUR-trees; freezing them yields ordinary
:class:`~repro.perf.snapshot.IndexSnapshot` columns, so every
downstream consumer — the snapshot engine, PR 6's shared-memory
segments, the scatter searcher — works per shard unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..config import IndexConfig
from ..core.fused import locality_order
from ..errors import ConfigError
from ..index.iurtree import IURTree
from ..model.dataset import STDataset
from .summaries import (
    DEFAULT_FRONTIER,
    DEFAULT_KMAX,
    ShardSummary,
    build_summary,
)


@dataclass(frozen=True)
class ShardPlan:
    """A pure partition decision: which oids land in which shard.

    Attributes:
        shard_count: Number of shards (each non-empty).
        method: Partitioning strategy tag (``"morton"``).
        assignments: ``assignments[i]`` is the tuple of object ids owned
            by shard ``i``, in Morton order.
    """

    shard_count: int
    method: str
    assignments: Tuple[Tuple[int, ...], ...]


class Shard:
    """One shard: a sub-dataset plus its built (C)IUR-tree."""

    __slots__ = ("shard_id", "dataset", "tree")

    def __init__(self, shard_id: int, dataset: STDataset, tree) -> None:
        self.shard_id = shard_id
        self.dataset = dataset
        self.tree = tree

    def snapshot(self):
        """The shard tree's frozen columnar snapshot (memoized per
        generation by :meth:`IURTree.snapshot`)."""
        return self.tree.snapshot()

    def __len__(self) -> int:
        return len(self.dataset.objects)


class ShardPlanner:
    """Plans and builds a Morton partition of one dataset.

    Args:
        dataset: The corpus to partition.
        shard_count: Number of shards; must satisfy
            ``1 <= shard_count <= len(dataset)`` so every shard is a
            valid non-empty dataset.
        index_config: Per-shard tree knobs (defaults to a fresh
            :class:`~repro.config.IndexConfig`).
        tree_cls: Tree class to build per shard
            (:class:`~repro.index.iurtree.IURTree` or
            :class:`~repro.index.ciurtree.CIURTree`).
        build_method: Structural build method passed through to
            ``tree_cls.build`` (``"str"``, ``"text-str"``, ``"insert"``).
    """

    def __init__(
        self,
        dataset: STDataset,
        shard_count: int,
        *,
        index_config: Optional[IndexConfig] = None,
        tree_cls=IURTree,
        build_method: str = "str",
    ) -> None:
        n = len(dataset.objects)
        if shard_count < 1:
            raise ConfigError(f"shard_count must be >= 1, got {shard_count}")
        if shard_count > n:
            raise ConfigError(
                f"shard_count {shard_count} exceeds dataset size {n}"
            )
        self.dataset = dataset
        self.shard_count = shard_count
        self.index_config = index_config
        self.tree_cls = tree_cls
        self.build_method = build_method

    def plan(self) -> ShardPlan:
        """Morton-sort the objects and cut balanced contiguous runs.

        Shard sizes differ by at most one object (``i*n//S`` split
        points), and the order is deterministic (stable Morton sort),
        so the same dataset and shard count always produce the same
        partition.
        """
        objects = self.dataset.objects
        order = locality_order(objects)
        n = len(order)
        s = self.shard_count
        assignments: List[Tuple[int, ...]] = []
        for i in range(s):
            run = order[i * n // s : (i + 1) * n // s]
            assignments.append(tuple(objects[j].oid for j in run))
        return ShardPlan(
            shard_count=s, method="morton", assignments=tuple(assignments)
        )

    def build(self, plan: Optional[ShardPlan] = None) -> "ShardedIndex":
        """Materialize a plan: one sub-dataset and tree per shard.

        Sub-datasets share the parent's object instances (so memoized
        frozen vector forms are shared too), vocabulary, region, and
        similarity config — see the module docstring for why this is
        load-bearing for parity.
        """
        if plan is None:
            plan = self.plan()
        dataset = self.dataset
        shards: List[Shard] = []
        for shard_id, oids in enumerate(plan.assignments):
            sub = STDataset(
                [dataset.get(oid) for oid in oids],
                dataset.vocabulary,
                dataset.region,
                dataset.config,
            )
            tree = self.tree_cls.build(
                sub, config=self.index_config, method=self.build_method
            )
            shards.append(Shard(shard_id, sub, tree))
        return ShardedIndex(dataset, plan, shards)


class ShardedIndex:
    """A built shard set with memoized per-setting admission summaries."""

    def __init__(
        self, dataset: STDataset, plan: ShardPlan, shards: List[Shard]
    ) -> None:
        self.dataset = dataset
        self.plan = plan
        self.shards = shards
        self._summaries: Dict[Tuple, Tuple[ShardSummary, ...]] = {}

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def engines(self, measure, alpha: float, te_weight: float) -> List:
        """One memoized :class:`~repro.core.traversal.SnapshotEngine`
        per shard for the given similarity setting."""
        return [
            shard.snapshot().engine_for(shard.tree, measure, alpha, te_weight)
            for shard in self.shards
        ]

    def summaries(
        self,
        measure,
        alpha: float,
        te_weight: float,
        *,
        kmax: int = DEFAULT_KMAX,
        frontier_size: int = DEFAULT_FRONTIER,
        warm_floors: bool = False,
    ) -> Tuple[ShardSummary, ...]:
        """Admission-pruning tables for every shard, built once per
        ``(measure, alpha, te_weight, kmax, frontier_size, warm_floors)``
        setting.  ``warm_floors=True`` tightens each table with the
        shard's frozen :class:`~repro.approx.KnnlSketch` global floor
        (still a sound lower bound — see
        :func:`~repro.shard.summaries.build_summary`)."""
        key = (measure.name, alpha, te_weight, kmax, frontier_size,
               warm_floors)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        engines = self.engines(measure, alpha, te_weight)
        sketches = [None] * len(engines)
        if warm_floors:
            sketches = [
                shard.snapshot().sketch_for(engine, kmax=kmax)
                for shard, engine in zip(self.shards, engines)
            ]
        built = tuple(
            build_summary(
                i,
                engine,
                kmax=kmax,
                frontier_size=frontier_size,
                sketch=sketches[i],
            )
            for i, engine in enumerate(engines)
        )
        self._summaries[key] = built
        return built


def build_sharded_index(
    dataset: STDataset,
    shard_count: int,
    *,
    index_config: Optional[IndexConfig] = None,
    tree_cls=IURTree,
    build_method: str = "str",
) -> ShardedIndex:
    """Plan and build in one call (the common case)."""
    planner = ShardPlanner(
        dataset,
        shard_count,
        index_config=index_config,
        tree_cls=tree_cls,
        build_method=build_method,
    )
    return planner.build()
