"""Sharded scatter–gather RSTkNN: horizontal scale for one query.

The package lifts the paper's subtree pruning one level up, to whole
shards of a Morton partition:

* :mod:`repro.shard.planner` — :class:`ShardPlanner` cuts the dataset
  along the fused engine's Morton order into balanced, spatially
  coherent shards, each an ordinary (C)IUR-tree over a sub-dataset
  that shares the parent's region/vocabulary/config (the bit-parity
  keystone);
* :mod:`repro.shard.summaries` — precomputed per-shard competitor
  floors (`kNNL` tables over a node frontier) for admission-time shard
  pruning;
* :mod:`repro.shard.merge` — the exact gather: global membership by
  capped cross-shard competitor counting with
  :class:`~repro.shard.merge.ShardProbe`;
* :mod:`repro.shard.scatter` — :class:`ScatterGatherSearcher`, the two
  exact rounds (admit+scatter, gather+merge), in-process or over a
  persistent worker pool attaching every shard zero-copy via PR 6
  segments;
* :mod:`repro.shard.http` — the asyncio HTTP front door
  (``repro-rstknn serve-http``) with per-shard
  :class:`~repro.service.QueryService` policies.

Answers are hard-gated bit-identical to the unsharded snapshot engine
(`benchmarks/bench_shard.py`, ``tests/test_shard.py``).
"""

from .merge import ShardProbe, exact_similarity
from .planner import (
    Shard,
    ShardPlan,
    ShardPlanner,
    ShardedIndex,
    build_sharded_index,
)
from .scatter import (
    SHARD_FANOUT_BUCKETS,
    ScatterGatherSearcher,
    ShardQueryStats,
    ShardSearchResult,
)
from .summaries import (
    DEFAULT_FRONTIER,
    DEFAULT_KMAX,
    ShardSummary,
    build_summary,
    query_upper,
)

__all__ = [
    "DEFAULT_FRONTIER",
    "DEFAULT_KMAX",
    "SHARD_FANOUT_BUCKETS",
    "ScatterGatherSearcher",
    "Shard",
    "ShardPlan",
    "ShardPlanner",
    "ShardProbe",
    "ShardQueryStats",
    "ShardSearchResult",
    "ShardSummary",
    "ShardedIndex",
    "build_sharded_index",
    "build_summary",
    "exact_similarity",
    "query_upper",
]
