"""Precomputed per-shard bound tables for admission-time shard pruning.

The paper prunes a *subtree* when the query's optimistic similarity
cannot reach the subtree's pessimistic k-NN band (``MaxST < kNNL``).
Sharding lifts the same rule one level: a whole shard can be skipped in
the scatter round when, for **every** object ``s`` it holds, at least
``k`` within-shard competitors are provably more similar to ``s`` than
the query can possibly be.  Then no object of the shard is a global
answer — competitors from other shards could only raise the counts —
so the shard contributes nothing to the candidate set and the scatter
never visits it.  (Its objects still *compete* against other shards'
candidates, so the merge round probes pruned shards too; admission
pruning saves the expensive branch-and-bound walk, not the cheap count
probes.)

The pessimistic side is precomputed once per shard and similarity
setting as :class:`ShardSummary`: a *frontier* of directory slots is
peeled off the shard snapshot (largest-count nodes first, so the
frontier tracks the shard's real cluster structure), and for each
frontier node ``f`` the engine's own root contribution template is
evaluated — pairwise ``MinST(f, g)`` lower bounds against every other
frontier node (weight ``cnt[g]``) plus the self term ``MinST(f, f)``
(weight ``cnt[f] - 1``).  The weighted k-th largest of those lower
bounds (:func:`repro.core.contributions._kth_largest`) lower-bounds the
k-th best within-shard competitor similarity of *every* object under
``f``; the table entry ``knnl[k-1]`` takes the minimum over the
frontier, making it valid for every object of the shard.  Tables cover
``k = 1 .. kmax`` (:data:`DEFAULT_KMAX`); larger ``k`` simply never
prunes.

At query time the optimistic side is one :class:`~repro.shard.merge.ShardProbe`
upper bound per frontier node: ``q_hi = max_f MaxST(q, f)``.  The shard
is pruned iff ``q_hi < knnl[k-1]`` — strict, because membership counts
only *strictly* better competitors: each of the k guaranteed
competitors has similarity ``>= knnl[k-1] > q_hi >= SimST(q, s)``.

Pair bounds are evaluated through the shard engine's memoized ``_st``
table, so summary construction also warms the bounds the scatter walk
will reuse.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

from ..core.contributions import _kth_largest
from .merge import ShardProbe

#: Largest ``k`` the admission tables cover; queries with ``k`` beyond
#: this scatter to every shard (correct, just unpruned).
DEFAULT_KMAX = 16

#: Target frontier width per shard: more nodes tighten the pessimistic
#: bound (deeper, smaller MBRs) at linear summary-build cost.
DEFAULT_FRONTIER = 16


@dataclass(frozen=True)
class ShardSummary:
    """One shard's admission-pruning table for one similarity setting.

    Attributes:
        shard_id: Position of the shard in its :class:`~repro.shard.planner.ShardedIndex`.
        n_objects: Objects resident in the shard.
        frontier: Snapshot slots the summary was computed over; query
            upper bounds are evaluated against these same slots.
        knnl: ``knnl[k-1]`` lower-bounds, for every object in the
            shard, the similarity of its k-th best within-shard
            competitor (``k = 1 .. len(knnl)``).
    """

    shard_id: int
    n_objects: int
    frontier: Tuple[int, ...]
    knnl: Tuple[float, ...]

    def can_prune(self, q_upper: float, k: int) -> bool:
        """Whether the whole shard is skippable for a query bounded by
        ``q_upper`` at this ``k`` (strict comparison; see module doc).

        Count-aware: an object in a shard of ``n_objects`` has at most
        ``n_objects - 1`` within-shard competitors, so ``k`` beyond
        that can never assemble k provably-better competitors and the
        shard is never pruned.  (The ``knnl`` math already degrades to
        a 0.0 bound there — :func:`_kth_largest` runs out of weighted
        competitors — but the guard keeps soundness explicit rather
        than an artifact of the table values; ``tests/test_shard.py``
        pins it with single-object shards.)"""
        if k > self.n_objects - 1:
            return False
        return 1 <= k <= len(self.knnl) and q_upper < self.knnl[k - 1]


def _peel_frontier(snap, frontier_size: int) -> List[int]:
    """Descend the snapshot's largest directory nodes until up to
    ``frontier_size`` slots cover the shard (objects stay as-is).

    Same adaptive discipline as the sketch peel
    (:func:`repro.approx.sketch._peel_frontier`): a zero-fanout
    directory slot (degenerate empty node) becomes its own frontier
    slot and the peel continues — it must not dump the whole heap and
    leave the frontier far under budget with correspondingly loose
    floors — and a node whose expansion would overflow the budget is
    likewise kept while smaller nodes may still be refined.
    """
    frontier: List[int] = []
    heap: List[Tuple[int, int]] = []  # (-cnt, slot) for directory slots
    for r in snap.root_slots:
        if snap.is_obj[r]:
            frontier.append(r)
        else:
            heapq.heappush(heap, (-snap.cnt[r], r))
    while heap:
        _neg_cnt, slot = heapq.heappop(heap)
        children = range(snap.first_child[slot], snap.last_child[slot])
        fanout = len(children)
        if fanout == 0:
            frontier.append(slot)
            continue
        if len(frontier) + len(heap) + fanout > frontier_size:
            frontier.append(slot)
            continue
        for c in children:
            if snap.is_obj[c]:
                frontier.append(c)
            else:
                heapq.heappush(heap, (-snap.cnt[c], c))
    return frontier


def build_summary(
    shard_id: int,
    engine,
    kmax: int = DEFAULT_KMAX,
    frontier_size: int = DEFAULT_FRONTIER,
    sketch=None,
) -> ShardSummary:
    """Compute one shard's :class:`ShardSummary` from its snapshot engine.

    ``engine`` is the shard's :class:`~repro.core.traversal.SnapshotEngine`
    for the similarity setting being served — its memoized pair-bound
    table supplies every ``MinST`` the template needs (and keeps the
    values it computes for the scatter walk to reuse).

    ``sketch`` optionally tightens the table with the shard's frozen
    :class:`~repro.approx.KnnlSketch` (built over the *same* engine, so
    the same snapshot and similarity setting).  Tightening happens at
    two levels: per frontier node, ``sketch.node_floor(f, k)``
    lower-bounds the k-th best within-shard competitor of every object
    under ``f`` exactly like the pair-template bound does, so each
    node's contribution is the maximum of the two; globally,
    ``sketch.global_floor(k)`` (which the sketch's per-object
    k-distance curves can sharpen above any node row) lower-bounds
    every shard object, so the finished table entry takes that maximum
    too.  Both combinations are sound — each side independently
    lower-bounds the same quantity — and possibly tighter.
    """
    snap = engine.snap
    frontier = _peel_frontier(snap, frontier_size)
    cnt = snap.cnt
    st = engine._st
    knnl = [float("inf")] * kmax
    for f in frontier:
        contribs: List[Tuple[float, int]] = []
        for g in frontier:
            if g == f:
                continue
            lo, _hi = st(f, g)
            contribs.append((lo, cnt[g]))
        cf = cnt[f]
        if cf >= 2:
            lo, _hi = st(f, f)
            contribs.append((lo, cf - 1))
        for k in range(1, kmax + 1):
            bound = _kth_largest(contribs, k)
            if sketch is not None and k <= sketch.kmax:
                node_floor = sketch.node_floor(f, k)
                if node_floor > bound:
                    bound = node_floor
            if bound < knnl[k - 1]:
                knnl[k - 1] = bound
    n_objects = sum(cnt[r] for r in snap.root_slots)
    table = [0.0 if b == float("inf") else b for b in knnl]
    if sketch is not None:
        for k in range(1, min(kmax, sketch.kmax) + 1):
            floor = sketch.global_floor(k)
            if floor > table[k - 1]:
                table[k - 1] = floor
    return ShardSummary(
        shard_id=shard_id,
        n_objects=int(n_objects),
        frontier=tuple(frontier),
        knnl=tuple(table),
    )


def query_upper(probe: ShardProbe, summary: ShardSummary) -> float:
    """Optimistic ``SimST`` of a query against anything in the shard.

    The maximum of the probe's ``MaxST`` upper bounds over the summary
    frontier — every shard object lies under some frontier slot, whose
    upper bound dominates it.  An empty frontier (a shard snapshot with
    no slots, i.e. no objects) yields ``0.0``: nothing to reach, and a
    zero upper bound never satisfies the strict ``can_prune``
    comparison against a non-negative floor incorrectly, since an empty
    shard has nothing to over-prune.
    """
    if not summary.frontier:
        return 0.0
    return max(probe.upper(f) for f in summary.frontier)
