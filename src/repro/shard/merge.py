"""Exact cross-shard merge: membership by global competitor counting.

A shard-local RSTkNN search under-counts competitors — objects in
*other* shards can also be more similar to a candidate than the query
is — so shard-local answers are a **candidate superset** of the global
answer (fewer competitors can only keep an object in, never push it
out).  This module supplies the second, exact round: for each candidate
``s`` the scatter layer computes ``q_sim = SimST(q, s)`` once and then
sums, shard by shard, how many objects beat it:

    count_X(s) = |{ e in shard X : oid(e) != oid(s),  SimST(s, e) > q_sim }|

``s`` is a global answer iff ``sum_X count_X(s) <= k - 1`` — exactly
the tie-inclusive membership rule of
:class:`~repro.core.rstknn.RSTkNNSearcher` (strictly fewer than ``k``
strictly-better competitors).

Each per-shard count is produced by :meth:`ShardProbe.count_better`, a
line-faithful analogue of the snapshot engine's verification probe
(:meth:`~repro.core.traversal.SnapshotEngine._verify`) generalized to a
probe object that need not be resident in the probed shard: subtrees
whose optimistic bound cannot beat ``q_sim`` are skipped, subtrees whose
pessimistic bound already beats it are counted wholesale (``cnt``
objects at once, valid because ``MinST`` lower-bounds the similarity of
the probe to *every* object underneath), and only straddling subtrees
descend.  Counts are capped at the remaining budget ``k - total``: once
``total`` reaches ``k`` the candidate is out regardless of the exact
tally, the same early exit ``_verify`` takes — capping never changes
the ``<= k - 1`` decision, because a capped shard implies the true sum
is at least ``k`` too.

Bit-parity note: the membership decision compares exact object-level
similarities against ``q_sim`` with the *seed engine's* operand order
(probe first), and every input float — coordinates, ``maxD``, frozen
vectors — is shared with the unsharded index because shard datasets
share the parent's region, vocabulary, and config (see
:mod:`repro.shard.planner`).  Directory-level bounds differ per shard
tree shape, but they only steer the walk; the counted quantities are
exact either way, so the merged id set is bit-identical to the
unsharded snapshot engine's.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..core.rstknn import SearchStats
from ..model.objects import STObject
from ..text.interval import IntervalVector
from ..text.similarity import ExtendedJaccard


def exact_similarity(a: STObject, b: STObject, alpha: float, measure, maxD: float) -> float:
    """Exact ``SimST(a, b)`` between two objects (seed operand order).

    Mirrors the snapshot engine's ``q_exact`` closure term by term:
    the spatial distance is ``hypot(a - b)`` with ``a`` first, the text
    term calls ``a``'s frozen form (or the measure) with ``a`` first,
    and the proximity clamp divides by the dataset-wide ``maxD`` —
    bit-identical to the value the unsharded engine compares against,
    because shard datasets share the parent's region and vectors.
    """
    am = a.mbr()
    bm = b.mbr()
    score = 0.0
    if alpha > 0.0:
        dist = math.hypot(am.xlo - bm.xlo, am.ylo - bm.ylo)
        fd = 1.0 - dist / maxD
        if fd < 0.0:
            fd = 0.0
        elif fd > 1.0:
            fd = 1.0
        score += alpha * fd
    if alpha < 1.0:
        if isinstance(measure, ExtendedJaccard):
            sim = a.vector.frozen().ext_jaccard(b.vector.frozen())
        else:
            sim = measure.similarity(a.vector, b.vector)
        score += (1.0 - alpha) * sim
    return score


class ShardProbe:
    """Similarity bounds between one external object and a shard snapshot.

    The probe object (a merge candidate, or the query itself during
    shard admission) is generally *not* resident in the probed shard,
    so the snapshot engine's slot-pair machinery does not apply; this
    class re-derives the same bound formulas — spatial min/max distance
    against slot MBRs, Extended-Jaccard (or measure) cluster bounds,
    exact object-level scores — from the probe's own point and frozen
    vector, in the engine's operand order (probe first).

    One probe is built per ``(object, shard)`` pair; construction cost
    is one frozen-form lookup (memoized on the vector), so probes are
    cheap enough to build per query.
    """

    __slots__ = (
        "snap", "measure", "alpha", "oid", "px", "py",
        "_ej", "_vec", "_frozen", "_nsq", "_iv",
    )

    def __init__(self, snap, measure, alpha: float, obj: STObject) -> None:
        self.snap = snap
        self.measure = measure
        self.alpha = alpha
        self.oid = obj.oid
        m = obj.mbr()
        # Degenerate object MBRs make the center equal xlo/ylo exactly.
        self.px = (m.xlo + m.xhi) / 2.0
        self.py = (m.ylo + m.yhi) / 2.0
        self._ej = isinstance(measure, ExtendedJaccard)
        self._vec = obj.vector
        self._frozen = obj.vector.frozen()
        self._nsq = obj.vector.norm_squared
        self._iv = None if self._ej else IntervalVector.from_document(obj.vector)

    @classmethod
    def from_slot(cls, snap, measure, alpha: float, owner_snap, slot: int) -> "ShardProbe":
        """Build a probe for the object stored at ``owner_snap``'s slot.

        The worker-side constructor: merge workers hold attached
        snapshot columns, not :class:`~repro.model.objects.STObject`
        instances, so the probe is assembled straight from the owning
        shard's frozen columns.  Bit-identical to the object
        constructor — object slots store degenerate MBRs, so
        ``xlo[slot]`` *is* the center the object path computes.
        """
        probe = cls.__new__(cls)
        probe.snap = snap
        probe.measure = measure
        probe.alpha = alpha
        probe.oid = owner_snap.ref[slot]
        probe.px = owner_snap.xlo[slot]
        probe.py = owner_snap.ylo[slot]
        probe._ej = isinstance(measure, ExtendedJaccard)
        probe._vec = owner_snap.obj_vec[slot]
        probe._frozen = owner_snap.obj_frozen[slot]
        probe._nsq = probe._vec.norm_squared
        probe._iv = (
            None if probe._ej else IntervalVector.from_document(probe._vec)
        )
        return probe

    def _fd(self, distance: float) -> float:
        score = 1.0 - distance / self.snap.maxD
        if score < 0.0:
            return 0.0
        if score > 1.0:
            return 1.0
        return score

    def text_bounds(self, slot: int) -> Tuple[float, float]:
        """``(MinSimT, MaxSimT)`` of the probe against a slot's clusters.

        The probe contributes a single degenerate cluster (its own
        vector as both intersection and union), exactly like the query
        entry in the engines' ``q_text`` closures.
        """
        lo: Optional[float] = None
        hi = 0.0
        if self._ej:
            frozen = self._frozen
            nsq = self._nsq
            for _iv, int_b, uni_b, insq_b, unsq_b in self.snap.clusters[slot]:
                d_min = frozen.dot(int_b)
                if d_min == 0.0:
                    pair_lo = 0.0
                else:
                    s_max = nsq + unsq_b
                    pair_lo = d_min / (s_max - d_min)
                d_max = frozen.dot(uni_b)
                if d_max == 0.0:
                    pair_hi = 0.0
                elif 2.0 * d_max >= nsq + insq_b:
                    pair_hi = 1.0
                else:
                    s_min = nsq + insq_b
                    pair_hi = d_max / (s_min - d_max)
                lo = pair_lo if lo is None else min(lo, pair_lo)
                hi = max(hi, pair_hi)
        else:
            measure = self.measure
            iv_a = self._iv
            for ivb, *_ in self.snap.clusters[slot]:
                pair_lo = measure.min_similarity(iv_a, ivb)
                pair_hi = measure.max_similarity(iv_a, ivb)
                lo = pair_lo if lo is None else min(lo, pair_lo)
                hi = max(hi, pair_hi)
        return (lo if lo is not None else 0.0, hi)

    def exact(self, slot: int) -> float:
        """Exact SimST of the probe against an object slot."""
        snap = self.snap
        alpha = self.alpha
        score = 0.0
        if alpha > 0.0:
            dist = math.hypot(self.px - snap.xlo[slot], self.py - snap.ylo[slot])
            score += alpha * self._fd(dist)
        if alpha < 1.0:
            if self._ej:
                sim = self._frozen.ext_jaccard(snap.obj_frozen[slot])
            else:
                sim = self.measure.similarity(self._vec, snap.obj_vec[slot])
            score += (1.0 - alpha) * sim
        return score

    def bounds(self, slot: int) -> Tuple[float, float]:
        """Blended ``(MinST, MaxST)`` of the probe against any slot."""
        snap = self.snap
        if snap.is_obj[slot]:
            score = self.exact(slot)
            return score, score
        alpha = self.alpha
        if alpha == 0.0:
            return self.text_bounds(slot)
        xlo, ylo, xhi, yhi = snap.xlo, snap.ylo, snap.xhi, snap.yhi
        px, py = self.px, self.py
        dx = max(px - xhi[slot], 0.0, xlo[slot] - px)
        dy = max(py - yhi[slot], 0.0, ylo[slot] - py)
        s_hi = self._fd(math.hypot(dx, dy))
        dx = max(abs(px - xlo[slot]), abs(xhi[slot] - px))
        dy = max(abs(py - ylo[slot]), abs(yhi[slot] - py))
        s_lo = self._fd(math.hypot(dx, dy))
        if alpha == 1.0:
            return alpha * s_lo, alpha * s_hi
        t_lo, t_hi = self.text_bounds(slot)
        return (
            alpha * s_lo + (1.0 - alpha) * t_lo,
            alpha * s_hi + (1.0 - alpha) * t_hi,
        )

    def upper(self, slot: int) -> float:
        """``MaxST`` of the probe against a slot (admission bound side)."""
        return self.bounds(slot)[1]

    def count_better(
        self,
        tree,
        q_sim: float,
        budget: int,
        stats: Optional[SearchStats] = None,
    ) -> int:
        """Objects in this shard strictly more similar to the probe than
        ``q_sim``, capped at ``budget``.

        The walk mirrors :meth:`SnapshotEngine._verify
        <repro.core.traversal.SnapshotEngine._verify>`: spatial-only
        optimistic bounds first (a subtree that cannot beat ``q_sim``
        even with text similarity 1 is skipped without paying for a text
        bound), wholesale group counts for subtrees whose pessimistic
        bound already beats ``q_sim`` — guarded, as in the engine, by
        the probe point lying outside the subtree MBR so the probe can
        never count itself — and descent otherwise.  Object slots whose
        ``ref`` equals the probe's oid are excluded, so probing the
        candidate's home shard is exact too.  Node descents charge
        ``tree.buffer`` and ``stats.verify_node_reads`` like the
        engine's probe.
        """
        snap = self.snap
        alpha = self.alpha
        is_obj = snap.is_obj
        ref = snap.ref
        cnt = snap.cnt
        xlo, ylo, xhi, yhi = snap.xlo, snap.ylo, snap.xhi, snap.yhi
        px, py = self.px, self.py
        oid = self.oid
        fd = self._fd
        count = 0
        stack = list(snap.root_slots)
        while stack and count < budget:
            e = stack.pop()
            if is_obj[e]:
                if ref[e] == oid:
                    continue
                if self.exact_or_cached(e) > q_sim:
                    count += 1
                continue
            if alpha > 0.0:
                dx = max(px - xhi[e], 0.0, xlo[e] - px)
                dy = max(py - yhi[e], 0.0, ylo[e] - py)
                s_hi = fd(math.hypot(dx, dy))
                opt_hi = alpha * s_hi + (1.0 - alpha)
                if opt_hi <= q_sim:
                    # Even with text similarity 1 nothing under this
                    # subtree can beat the query's score.
                    continue
                dx = max(abs(px - xlo[e]), abs(xhi[e] - px))
                dy = max(abs(py - ylo[e]), abs(yhi[e] - py))
                s_lo = fd(math.hypot(dx, dy))
                if (
                    alpha * s_lo > q_sim
                    and not (xlo[e] <= px <= xhi[e] and ylo[e] <= py <= yhi[e])
                ):
                    # Beats the query on space alone and the probe lies
                    # elsewhere: every object below is a competitor.
                    count += cnt[e]
                    continue
                if alpha == 1.0:
                    lo, hi = alpha * s_lo, alpha * s_hi
                else:
                    t_lo, t_hi = self.text_bounds(e)
                    lo = alpha * s_lo + (1.0 - alpha) * t_lo
                    hi = alpha * s_hi + (1.0 - alpha) * t_hi
            else:
                lo, hi = self.text_bounds(e)
            if hi <= q_sim:
                continue
            if lo > q_sim and not (
                xlo[e] <= px <= xhi[e] and ylo[e] <= py <= yhi[e]
            ):
                count += cnt[e]
                continue
            if stats is not None:
                stats.verify_node_reads += 1
            tree.buffer.get(snap.record_id[e], "verify")
            stack.extend(range(snap.first_child[e], snap.last_child[e]))
        return count

    def exact_or_cached(self, slot: int) -> float:
        """Exact SimST against an object slot (no caching today; the
        hook exists so a probe-side memo can slot in without touching
        :meth:`count_better`)."""
        return self.exact(slot)
