"""Scatter–gather RSTkNN search over a Morton-sharded index.

One query runs in two exact rounds over the shards of a
:class:`~repro.shard.planner.ShardedIndex`:

1. **Scatter** — the query's optimistic bound against each shard's
   summary frontier is compared with the shard's precomputed
   within-shard competitor floor (:mod:`repro.shard.summaries`);
   shards that cannot host an answer are skipped (``shard.pruned``),
   the rest run an *unmodified*
   :class:`~repro.core.traversal.SnapshotEngine` search
   (``shard.searched``).  Because a shard-local search sees fewer
   competitors than the global index, its answer set is a **superset**
   of the global answer restricted to that shard — no true answer is
   lost, and pruned shards provably contribute none.
2. **Gather/merge** — every round-1 candidate is re-judged globally:
   its exact ``SimST`` against the query is computed once, then
   strictly-better competitors are counted shard by shard with
   :meth:`~repro.shard.merge.ShardProbe.count_better` (budget-capped;
   pruned shards are probed here too, since their objects still
   *compete*).  A candidate survives iff the global competitor count is
   at most ``k - 1`` — the same tie-inclusive rule as the unsharded
   engines — so the merged, ascending-id answer list is bit-identical
   to the unsharded snapshot engine's, which the bench and test suites
   hard-gate.

With ``workers > 0`` both rounds fan out over a persistent process
pool whose workers attach **all** shard snapshots zero-copy through
PR 6's :class:`~repro.perf.shm.SharedSnapshotSegment` (one segment per
shard; pickle transport is the recorded fallback when shared memory is
unavailable).  Any worker failure falls back to in-process execution
of the affected task — the parent keeps the live shard trees — so
results never depend on pool health.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SimilarityConfig
from ..core.rstknn import SearchStats
from ..errors import ConfigError
from ..model.objects import STObject
from ..obs import NULL_REGISTRY, MetricsRegistry
from ..text.similarity import make_measure
from .merge import ShardProbe, exact_similarity
from .planner import ShardedIndex
from .summaries import DEFAULT_FRONTIER, DEFAULT_KMAX, query_upper

#: Fan-out histogram buckets: how many shards one query searched.
SHARD_FANOUT_BUCKETS = (1, 2, 4, 8, 16, 32)

_SHARE_CHOICES = ("auto", "shm", "pickle")


@dataclass
class ShardQueryStats:
    """Per-query scatter–gather accounting.

    ``shards_pruned`` counts admission rejections (no round-1 walk);
    ``merge_probes`` counts round-2 ``count_better`` walks;
    ``candidates`` is the round-1 union size the merge had to judge.
    """

    shards_total: int = 0
    shards_searched: int = 0
    shards_pruned: int = 0
    candidates: int = 0
    merge_probes: int = 0
    elapsed_seconds: float = 0.0
    search: SearchStats = field(default_factory=SearchStats)

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for experiment logging (engine stats nested)."""
        return {
            "shards_total": self.shards_total,
            "shards_searched": self.shards_searched,
            "shards_pruned": self.shards_pruned,
            "candidates": self.candidates,
            "merge_probes": self.merge_probes,
            "elapsed_seconds": self.elapsed_seconds,
            "search": self.search.as_dict(),
        }


@dataclass
class ShardSearchResult:
    """Merged answer ids (ascending) plus scatter–gather statistics."""

    ids: List[int]
    stats: ShardQueryStats


# ----------------------------------------------------------------------
# Worker-side state and tasks (module level: picklable by name)
# ----------------------------------------------------------------------

_WORKER: Dict[str, object] = {}


def _init_shard_worker(payloads, config, te_weight: float) -> None:
    """Pool initializer: attach/build every shard once per worker.

    ``payloads[sid]`` is ``("shm", name, generation)`` — attach the
    segment zero-copy — or ``("pickle", tree)`` — the shipped tree is
    snapshotted locally.  Engines are built eagerly so the first query
    pays no lazy-initialization latency.
    """
    measure = make_measure(config.text_measure)
    alpha = config.alpha
    snaps = []
    trees = []
    engines = []
    for payload in payloads:
        if payload[0] == "shm":
            from ..perf import shm as shm_mod  # noqa: PLC0415

            _tag, name, generation = payload
            attached = shm_mod.attach(name, expected_generation=generation)
            snap = attached.snapshot
            tree = attached.tree
            te = te_weight if attached.header["use_entropy_priority"] else 0.0
        else:
            _tag, tree = payload
            snap = tree.snapshot()
            te = te_weight if tree.config.use_entropy_priority else 0.0
        snaps.append(snap)
        trees.append(tree)
        engines.append(snap.engine_for(tree, measure, alpha, te))
    _WORKER["measure"] = measure
    _WORKER["alpha"] = alpha
    _WORKER["snaps"] = snaps
    _WORKER["trees"] = trees
    _WORKER["engines"] = engines


def _task_search(sid: int, query: STObject, k: int) -> List[int]:
    """Round-1 worker task: shard-local snapshot-engine search."""
    engine = _WORKER["engines"][sid]
    return list(engine.search(query, k).ids)


def _task_count(
    sid: int, items: Sequence[Tuple[int, int, float]], budget: int
) -> List[int]:
    """Round-2 worker task: competitor counts of candidates vs shard ``sid``.

    ``items`` are ``(owner_sid, owner_slot, q_sim)`` triples; the probe
    is reconstructed from the owning shard's attached columns
    (:meth:`ShardProbe.from_slot`), so no object pickling happens per
    query.
    """
    snaps = _WORKER["snaps"]
    measure = _WORKER["measure"]
    alpha = _WORKER["alpha"]
    target_snap = snaps[sid]
    tree = _WORKER["trees"][sid]
    counts = []
    for owner_sid, owner_slot, q_sim in items:
        probe = ShardProbe.from_slot(
            target_snap, measure, alpha, snaps[owner_sid], owner_slot
        )
        counts.append(probe.count_better(tree, q_sim, budget))
    return counts


class ScatterGatherSearcher:
    """Exact RSTkNN over shards: admission-prune, scatter, merge.

    Args:
        index: A built :class:`~repro.shard.planner.ShardedIndex`.
        config: Similarity configuration (defaults to the parent
            dataset's — shards share it by construction).
        te_weight: Entropy-priority weight, honored exactly as the
            unsharded searcher does (inert when the shard trees were
            built without ``use_entropy_priority``).
        workers: ``0`` runs both rounds in-process; ``N > 0`` keeps a
            persistent ``N``-process pool with every shard attached.
        share: Snapshot transport for the pool — ``"shm"`` (segments,
            error if unavailable), ``"pickle"``, or ``"auto"`` (shm
            with recorded pickle fallback).
        kmax: Largest ``k`` admission pruning covers
            (:data:`~repro.shard.summaries.DEFAULT_KMAX`).
        frontier_size: Summary frontier width per shard.
        metrics: Optional :class:`~repro.obs.MetricsRegistry` receiving
            the ``shard.*`` instruments (see ``docs/OBSERVABILITY.md``).
        warm_floors: Tighten each shard's admission table with its
            frozen kNNL sketch (:mod:`repro.approx`) — results stay
            bit-identical, admission can only prune more shards.

    Use as a context manager (or call :meth:`close`) when ``workers >
    0`` so segments are unlinked deterministically.
    """

    def __init__(
        self,
        index: ShardedIndex,
        config: Optional[SimilarityConfig] = None,
        te_weight: float = 0.05,
        *,
        workers: int = 0,
        share: str = "auto",
        kmax: int = DEFAULT_KMAX,
        frontier_size: int = DEFAULT_FRONTIER,
        metrics: Optional[MetricsRegistry] = None,
        warm_floors: bool = False,
    ) -> None:
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        if share not in _SHARE_CHOICES:
            raise ConfigError(
                f"share must be one of {_SHARE_CHOICES}, got {share!r}"
            )
        self.index = index
        cfg = config if config is not None else index.dataset.config
        self.config = cfg
        self.measure = make_measure(cfg.text_measure)
        self.alpha = cfg.alpha
        tree0 = index.shards[0].tree
        self.te_weight = (
            te_weight if tree0.config.use_entropy_priority else 0.0
        )
        self.workers = workers
        self.share = share
        self.kmax = kmax
        self.frontier_size = frontier_size
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.fallback_reason: Optional[str] = None
        self._engines = index.engines(self.measure, self.alpha, self.te_weight)
        self.warm_floors = bool(warm_floors)
        self._summaries = index.summaries(
            self.measure,
            self.alpha,
            self.te_weight,
            kmax=kmax,
            frontier_size=frontier_size,
            warm_floors=self.warm_floors,
        )
        self._maxD = index.dataset.proximity.max_distance
        self._slot_maps: List[Optional[Dict[int, int]]] = [None] * len(index)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._segments: List = []
        self._closed = False

    @classmethod
    def from_perf_config(
        cls,
        index: ShardedIndex,
        perf,
        config: Optional[SimilarityConfig] = None,
        te_weight: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "ScatterGatherSearcher":
        """Build from a :class:`repro.config.PerfConfig`.

        Honors ``perf.shard_kmax`` (admission-table depth),
        ``perf.batch_workers`` (``1`` = in-process scatter),
        ``perf.batch_share`` (pool snapshot transport) and
        ``perf.warm_floors`` (sketch-tightened admission tables); when
        ``perf.observability`` is set and no registry is passed, a live
        one is attached, mirroring ``BatchSearcher.from_perf_config``.
        """
        if metrics is None and perf.observability:
            metrics = MetricsRegistry()
        workers = perf.batch_workers if perf.batch_workers > 1 else 0
        return cls(
            index,
            config,
            te_weight,
            workers=workers,
            share=perf.batch_share,
            kmax=perf.shard_kmax,
            metrics=metrics,
            warm_floors=perf.warm_floors,
        )

    # ------------------------------------------------------------------
    # Pool / transport lifecycle
    # ------------------------------------------------------------------

    def _build_payloads(self) -> List[Tuple]:
        """One transport payload per shard; shm unless unavailable."""
        from ..perf import shm as shm_mod  # noqa: PLC0415

        if self.share != "pickle":
            ok, why = shm_mod.shm_available()
            if ok:
                try:
                    payloads: List[Tuple] = []
                    for shard in self.index.shards:
                        seg = shm_mod.SharedSnapshotSegment.create(
                            shard.tree, self.config, self.te_weight
                        )
                        self._segments.append(seg)
                        payloads.append(("shm", seg.name, seg.generation))
                    return payloads
                except Exception as exc:  # noqa: BLE001 — record + fall back
                    self._release_segments()
                    why = f"{type(exc).__name__}: {exc}"
            if self.share == "shm":
                raise ConfigError(
                    f"share='shm' requested but unavailable: {why}"
                )
            self.fallback_reason = f"shm_unavailable ({why})"
            warnings.warn(
                "shard pool falling back to pickle transport: "
                f"{self.fallback_reason}",
                RuntimeWarning,
                stacklevel=3,
            )
        return [("pickle", shard.tree) for shard in self.index.shards]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            payloads = self._build_payloads()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_shard_worker,
                initargs=(payloads, self.config, self.te_weight),
            )
        return self._pool

    def _release_segments(self) -> None:
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except Exception:  # noqa: BLE001 — teardown is best-effort
                pass
        self._segments = []

    def close(self) -> None:
        """Shut the pool down and unlink any exported segments."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._release_segments()

    def __enter__(self) -> "ScatterGatherSearcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _slot_of(self, sid: int, oid: int) -> int:
        """The object slot holding ``oid`` in shard ``sid``'s snapshot."""
        slots = self._slot_maps[sid]
        if slots is None:
            snap = self._engines[sid].snap
            slots = {
                snap.ref[s]: s
                for s in range(snap.n_slots)
                if snap.is_obj[s]
            }
            self._slot_maps[sid] = slots
        return slots[oid]

    def _admit(
        self, query: STObject, k: int
    ) -> Tuple[List[int], List[int]]:
        """Split shard ids into (admitted, pruned) for this query."""
        admitted: List[int] = []
        pruned: List[int] = []
        for sid, summary in enumerate(self._summaries):
            probe = ShardProbe(
                self._engines[sid].snap, self.measure, self.alpha, query
            )
            if summary.can_prune(query_upper(probe, summary), k):
                pruned.append(sid)
            else:
                admitted.append(sid)
        return admitted, pruned

    def _scatter(
        self, query: STObject, k: int, admitted: List[int], stats: ShardQueryStats
    ) -> List[Tuple[int, int]]:
        """Round 1: shard-local searches; returns ``(sid, oid)`` candidates."""
        candidates: List[Tuple[int, int]] = []
        remote: Dict[int, object] = {}
        if self.workers > 0 and len(admitted) > 1:
            pool = self._ensure_pool()
            for sid in admitted:
                remote[sid] = pool.submit(_task_search, sid, query, k)
        for sid in admitted:
            ids: Optional[List[int]] = None
            future = remote.get(sid)
            if future is not None:
                try:
                    ids = future.result()
                except Exception:  # noqa: BLE001 — worker died: run local
                    ids = None
            if ids is None:
                engine = self._engines[sid]
                result = engine.search(query, k)
                ids = list(result.ids)
                s = result.stats
                agg = stats.search
                agg.expansions += s.expansions
                agg.pruned_entries += s.pruned_entries
                agg.pruned_objects += s.pruned_objects
                agg.accepted_entries += s.accepted_entries
                agg.accepted_objects += s.accepted_objects
                agg.verified_objects += s.verified_objects
                agg.verify_node_reads += s.verify_node_reads
            candidates.extend((sid, oid) for oid in ids)
        return candidates

    def _merge(
        self,
        query: STObject,
        k: int,
        candidates: List[Tuple[int, int]],
        stats: ShardQueryStats,
    ) -> List[int]:
        """Round 2: global competitor counting; returns the answer ids."""
        if not candidates:
            return []
        dataset = self.index.dataset
        shard_count = len(self.index)
        q_sims = [
            exact_similarity(
                query, dataset.get(oid), self.alpha, self.measure, self._maxD
            )
            for _sid, oid in candidates
        ]
        totals = [0] * len(candidates)
        if self.workers > 0 and shard_count > 1:
            pool = self._ensure_pool()
            items = [
                (sid, self._slot_of(sid, oid), q_sims[i])
                for i, (sid, oid) in enumerate(candidates)
            ]
            futures = {
                target: pool.submit(_task_count, target, items, k)
                for target in range(shard_count)
            }
            for target in range(shard_count):
                try:
                    counts = futures[target].result()
                except Exception:  # noqa: BLE001 — worker died: run local
                    counts = self._count_local(query, candidates, q_sims, target, k)
                stats.merge_probes += len(counts)
                for i, c in enumerate(counts):
                    totals[i] += c
        else:
            for i, (sid, oid) in enumerate(candidates):
                obj = dataset.get(oid)
                total = 0
                for target in range(shard_count):
                    probe = ShardProbe(
                        self._engines[target].snap,
                        self.measure,
                        self.alpha,
                        obj,
                    )
                    stats.merge_probes += 1
                    total += probe.count_better(
                        self.index.shards[target].tree,
                        q_sims[i],
                        k - total,
                        stats=stats.search,
                    )
                    if total >= k:
                        break
                totals[i] = total
        return sorted(
            oid
            for i, (_sid, oid) in enumerate(candidates)
            if totals[i] <= k - 1
        )

    def _count_local(
        self,
        query: STObject,
        candidates: List[Tuple[int, int]],
        q_sims: List[float],
        target: int,
        k: int,
    ) -> List[int]:
        """In-process fallback for one failed round-2 worker task."""
        del query  # probes are built from the candidates, not the query
        dataset = self.index.dataset
        snap = self._engines[target].snap
        tree = self.index.shards[target].tree
        counts = []
        for i, (_sid, oid) in enumerate(candidates):
            probe = ShardProbe(snap, self.measure, self.alpha, dataset.get(oid))
            counts.append(probe.count_better(tree, q_sims[i], k))
        return counts

    def search(self, query: STObject, k: int) -> ShardSearchResult:
        """All objects counting ``query`` among their top-k, exactly.

        The returned id list is ascending and bit-identical to
        ``SnapshotEngine.search(query, k).ids`` on the unsharded index
        (hard-gated by ``benchmarks/bench_shard.py`` and the shard test
        suite).
        """
        started = time.perf_counter()
        stats = ShardQueryStats(shards_total=len(self.index))
        admitted, pruned_ids = self._admit(query, k)
        stats.shards_searched = len(admitted)
        stats.shards_pruned = len(pruned_ids)
        candidates = self._scatter(query, k, admitted, stats)
        stats.candidates = len(candidates)
        ids = self._merge(query, k, candidates, stats)
        stats.search.result_count = len(ids)
        stats.elapsed_seconds = time.perf_counter() - started
        m = self.metrics
        m.counter("shard.queries").inc()
        m.counter("shard.searched").inc(stats.shards_searched)
        m.counter("shard.pruned").inc(stats.shards_pruned)
        m.counter("shard.candidates").inc(stats.candidates)
        m.counter("shard.merge.probes").inc(stats.merge_probes)
        m.histogram("shard.fanout", SHARD_FANOUT_BUCKETS).observe(
            stats.shards_searched
        )
        return ShardSearchResult(ids=ids, stats=stats)
