"""Tree nodes: containers of entries plus their serialized form."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import IndexError_
from ..spatial import Rect
from ..storage.serialize import (
    NodeCodec,
    SerializedCluster,
    SerializedEntry,
    SerializedNode,
)
from .entry import Entry


@dataclass
class Node:
    """One IUR/CIUR-tree node.

    ``record_id`` is assigned when the tree is persisted to the simulated
    disk; fetching a node during search charges its record's page span.
    """

    node_id: int
    is_leaf: bool
    entries: List[Entry] = field(default_factory=list)
    parent_id: Optional[int] = None
    record_id: Optional[int] = None

    def mbr(self) -> Rect:
        """The bounding rectangle of all entries."""
        if not self.entries:
            raise IndexError_(f"node {self.node_id} is empty")
        return Rect.union_all(e.mbr for e in self.entries)

    def object_count(self) -> int:
        """Total objects summarized beneath this node."""
        return sum(e.count for e in self.entries)

    @property
    def fanout(self) -> int:
        """Number of entries stored in the node."""
        return len(self.entries)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_serialized(self) -> SerializedNode:
        """Neutral form for the storage codec (drives page accounting)."""
        out = SerializedNode(is_leaf=self.is_leaf, entries=[])
        for entry in self.entries:
            clusters = [
                SerializedCluster(
                    cluster_id=cid,
                    count=iv.doc_count,
                    intersection=iv.intersection.to_dict(),
                    union=iv.union.to_dict(),
                )
                for cid, iv in sorted(entry.clusters.items())
            ]
            out.entries.append(
                SerializedEntry(
                    ref=entry.ref,
                    mbr=entry.mbr.as_tuple(),
                    doc_count=entry.count,
                    clusters=clusters,
                )
            )
        return out

    def encode(self) -> bytes:
        """Serialized byte form (drives page accounting)."""
        return NodeCodec.encode(self.to_serialized())
