"""Analytical I/O cost estimation for RSTkNN queries.

A planner-style model in the spirit of classic R-tree cost analysis: a
node must be read when the query's decision procedure cannot discard it
from its parent's summary, which happens when the node's best possible
similarity to the query ``MaxST(q, N)`` clears the *reverse threshold* —
the similarity a dataset object needs before the query can sit in its
top-k.

The threshold is unknown before running the query, so the model estimates
it from a random sample: for ``m`` sampled objects it computes the exact
k-th-neighbor similarity *within the sample* and corrects for the
sample-to-population ratio using the standard order-statistic scaling
(the k-th neighbor among ``n`` objects behaves like the ``k·m/n``-th
among ``m``).  The estimate is then

    E[I/O] ≈ Σ over nodes N of pages(N) · 1[MaxST(q, N) >= θ̂]

Everything runs against in-memory summaries — the estimator never touches
the simulated disk, so it is usable for query planning.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.bounds import BoundComputer
from ..errors import QueryError
from ..model.objects import STObject
from ..model.scorer import STScorer
from ..text import make_measure
from .entry import Entry
from .iurtree import IURTree


@dataclass(frozen=True)
class CostEstimate:
    """Predicted query cost.

    Attributes:
        threshold: The estimated reverse threshold θ̂.
        node_visits: Predicted number of node reads.
        page_ios: Predicted simulated page I/Os (nodes weighted by their
            page span).
        total_nodes: Number of nodes in the tree (the ceiling).
    """

    threshold: float
    node_visits: int
    page_ios: int
    total_nodes: int

    def as_dict(self) -> Dict[str, float]:
        """Flat dict of the estimate, for experiment logging."""
        return {
            "threshold": self.threshold,
            "node_visits": self.node_visits,
            "page_ios": self.page_ios,
            "total_nodes": self.total_nodes,
        }


class RSTkNNCostModel:
    """Sampling-based I/O estimator for one tree."""

    def __init__(self, tree: IURTree, sample_size: int = 64, seed: int = 13) -> None:
        if sample_size < 2:
            raise QueryError(f"sample_size must be >= 2, got {sample_size}")
        self.tree = tree
        self.sample_size = sample_size
        self.seed = seed
        self._scorer = STScorer.for_dataset(tree.dataset)
        self._sample: Optional[List[STObject]] = None

    # ------------------------------------------------------------------
    # Threshold estimation
    # ------------------------------------------------------------------

    def _sampled_objects(self) -> List[STObject]:
        if self._sample is None:
            objects = self.tree.dataset.objects
            rng = random.Random(self.seed)
            size = min(self.sample_size, len(objects))
            self._sample = rng.sample(objects, size)
        return self._sample

    def estimate_threshold(self, k: int) -> float:
        """θ̂: the typical k-th-neighbor similarity of a dataset object.

        Within an ``m``-sample of an ``n``-object collection, the
        population's k-th neighbor corresponds to roughly the
        ``max(1, round(k·m/n))``-th sample neighbor.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        sample = self._sampled_objects()
        n = len(self.tree.dataset)
        m = len(sample)
        if m < 2:
            return 0.0
        rank = max(1, min(m - 1, round(k * m / max(n, 1))))
        kth_scores = []
        for obj in sample:
            sims = sorted(
                (
                    self._scorer.score(obj, other)
                    for other in sample
                    if other.oid != obj.oid
                ),
                reverse=True,
            )
            kth_scores.append(sims[rank - 1])
        kth_scores.sort()
        return kth_scores[len(kth_scores) // 2]  # median: robust to tails

    # ------------------------------------------------------------------
    # I/O estimation
    # ------------------------------------------------------------------

    def estimate(self, query: STObject, k: int) -> CostEstimate:
        """Predict node visits and page I/Os for ``search(query, k)``."""
        threshold = self.estimate_threshold(k)
        cfg = self.tree.dataset.config
        bounds = BoundComputer(
            self.tree.dataset.proximity, make_measure(cfg.text_measure), cfg.alpha
        )
        q_entry = Entry.for_object(-1, query.mbr(), query.vector)
        visits = 0
        pages = 0
        rtree = self.tree.rtree
        for nid, node in rtree.nodes.items():
            entry = Entry.for_subtree(nid, node.mbr(), node.entries)
            _, hi = bounds.st_bounds(q_entry, entry)
            if hi >= threshold:
                visits += 1
                record_id = node.record_id
                pages += (
                    self.tree.disk.record_pages(record_id)
                    if record_id is not None
                    else 1
                )
        return CostEstimate(
            threshold=threshold,
            node_visits=visits,
            page_ios=pages,
            total_nodes=len(rtree.nodes),
        )


def estimate_rstknn_io(
    tree: IURTree, query: STObject, k: int, sample_size: int = 64
) -> CostEstimate:
    """One-shot convenience wrapper around :class:`RSTkNNCostModel`."""
    return RSTkNNCostModel(tree, sample_size=sample_size).estimate(query, k)
