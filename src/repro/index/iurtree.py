"""The IUR-tree: a disk-resident R-tree with intersection/union vectors.

The structural work (packing, splitting, summary propagation) lives in
:class:`~repro.index.rtree.RTree`; this layer adds

* construction from an :class:`~repro.model.dataset.STDataset` (STR bulk
  load by default, or incremental insertion);
* persistence of every node to the simulated disk, so node visits during
  search are charged honest page I/Os through an LRU buffer pool; and
* the entry-level traversal API the RSTkNN searcher consumes
  (:meth:`root_entry` / :meth:`children`).

A plain IUR-tree is the single-cluster special case of the clustered
machinery: every document gets cluster label 0.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..config import IndexConfig
from ..errors import DatasetError, IndexError_, QueryError
from ..model.dataset import STDataset
from ..model.objects import STObject
from ..storage import BufferPool, DiskManager, IOStats
from .entry import Entry
from .node import Node
from .rtree import RTree
from .stats import IndexStats


def _pack_preserving_order(entries: Sequence[Entry], max_entries: int,
                           min_entries: int) -> RTree:
    """Pack object entries into leaves in the given order, then build the
    directory levels spatially (STR) over the packed leaves.

    Used by the ``text-str`` construction: the caller has already ordered
    the entries so that consecutive runs are textually homogeneous.
    """
    tree = RTree(max_entries, min_entries)
    items = list(entries)
    if not items:
        return tree
    level_nodes = []
    for i in range(0, len(items), max_entries):
        node = tree._new_node(is_leaf=True)
        node.entries = items[i : i + max_entries]
        level_nodes.append(node)
    while len(level_nodes) > 1:
        parent_entries = [
            Entry.for_subtree(n.node_id, n.mbr(), n.entries) for n in level_nodes
        ]
        from .rtree import _str_pack

        groups = _str_pack(parent_entries, max_entries)
        next_level = []
        for group in groups:
            node = tree._new_node(is_leaf=False)
            node.entries = list(group)
            for child_entry in group:
                tree.node(child_entry.ref).parent_id = node.node_id
            next_level.append(node)
        level_nodes = next_level
    tree.root_id = level_nodes[0].node_id
    return tree


class IURTree:
    """Disk-resident IUR-tree over a dataset."""

    kind = "iur"

    def __init__(
        self,
        dataset: STDataset,
        config: IndexConfig,
        rtree: RTree,
        labels: Sequence[int],
        outliers: Sequence[STObject] = (),
        build_seconds: float = 0.0,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self._rtree = rtree
        initial_labels = list(labels)
        self._label_by_oid = {
            o.oid: initial_labels[i] for i, o in enumerate(dataset.objects)
        }
        self._outliers = list(outliers)
        self._build_seconds = build_seconds
        self.io = IOStats()
        self.disk = DiskManager(config.page_size, self.io)
        self.buffer = BufferPool(self.disk, config.buffer_pages)
        self._record_ids: Dict[int, int] = {}
        self._root_entry_cache: Optional[Entry] = None
        #: Structural version: bumped by every mutation that can change a
        #: stored summary (insert/delete, incl. the outlier side list).
        #: Generation-tagged consumers — the shared pair-bound cache and
        #: frozen :class:`~repro.perf.snapshot.IndexSnapshot` forms — use
        #: it to detect staleness without node-level dirty tracking.
        self.generation = 0
        self._snapshot_cache = None
        if not config.store_intersections:
            self._strip_intersections(self._rtree.nodes.keys())
        self._persist()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: STDataset,
        config: Optional[IndexConfig] = None,
        method: str = "str",
    ) -> "IURTree":
        """Build over every object with a single text cluster.

        Args:
            dataset: The corpus to index.
            config: Index knobs (fanout, page size, buffer pages).
            method: ``"str"`` for bulk loading, ``"insert"`` for
                one-by-one insertion (slower; exercises the split path).
        """
        cfg = config if config is not None else IndexConfig()
        labels = [0] * len(dataset)
        started = time.perf_counter()
        rtree = cls._build_structure(dataset.objects, labels, cfg, method)
        elapsed = time.perf_counter() - started
        return cls(dataset, cfg, rtree, labels, build_seconds=elapsed)

    @staticmethod
    def _build_structure(
        objects: Sequence[STObject],
        labels: Sequence[int],
        config: IndexConfig,
        method: str,
    ) -> RTree:
        entries = [
            Entry.for_object(o.oid, o.mbr(), o.vector, labels[i])
            for i, o in enumerate(objects)
        ]
        if method == "str":
            return RTree.bulk_load(entries, config.max_entries, config.min_entries)
        if method == "text-str":
            # DIR/CIR-style construction: co-locate textually similar
            # objects first (group by cluster label), then pack each
            # group spatially with STR.  Leaves become text-pure, which
            # tightens every per-cluster interval vector above them, at
            # the cost of spatially wider leaves.
            by_label: dict = {}
            for entry, label in zip(entries, labels):
                by_label.setdefault(label, []).append(entry)
            ordered: list = []
            for label in sorted(by_label):
                group = RTree.bulk_load(
                    by_label[label], config.max_entries, config.min_entries
                )
                # Harvest the packed leaves in STR order, so runs of
                # max_entries consecutive entries are both text-pure and
                # spatially compact.
                for node in group.nodes.values():
                    if node.is_leaf:
                        ordered.extend(node.entries)
            return _pack_preserving_order(
                ordered, config.max_entries, config.min_entries
            )
        if method == "insert":
            tree = RTree(config.max_entries, config.min_entries)
            for entry in entries:
                tree.insert(entry)
            return tree
        raise QueryError(f"unknown build method {method!r}")

    def _persist(self) -> None:
        """Write every node to the simulated disk, children first."""
        if self._rtree.root_id is None:
            return
        order: List[int] = []
        stack = [self._rtree.root_id]
        while stack:
            nid = stack.pop()
            order.append(nid)
            node = self._rtree.node(nid)
            if not node.is_leaf:
                stack.extend(e.ref for e in node.entries)
        for nid in reversed(order):  # children before parents
            node = self._rtree.node(nid)
            record_id = self.disk.allocate(node.encode())
            node.record_id = record_id
            self._record_ids[nid] = record_id
        self._rtree.dirty.clear()
        self._rtree.removed.clear()

    # ------------------------------------------------------------------
    # Traversal API (charges simulated I/O)
    # ------------------------------------------------------------------

    def root_entry(self) -> Optional[Entry]:
        """Synthesized entry covering the whole tree (no I/O).

        ``None`` when the tree proper is empty (possible when OE extracted
        every object).  The synthesized entry (an interval-vector merge
        over the root node) is cached until the next structural update —
        every query starts here, so batch workloads would otherwise
        re-merge identical summaries per query.
        """
        if self._rtree.root_id is None:
            return None
        cached = self._root_entry_cache
        if cached is not None and cached.ref == self._rtree.root_id:
            return cached
        root = self._rtree.root
        entry = Entry.for_subtree(root.node_id, root.mbr(), root.entries)
        self._root_entry_cache = entry
        return entry

    def outlier_entries(self) -> List[Entry]:
        """Extracted objects as exact, pre-expanded entries (no I/O).

        Outliers live outside the tree; the paper's OE variant scans them
        directly, so handing them to the searcher costs no node I/O.
        """
        return [
            Entry.for_object(o.oid, o.mbr(), o.vector, self._label_by_oid[o.oid])
            for o in self._outliers
        ]

    def children(self, entry: Entry, tag: str = "node") -> List[Entry]:
        """Expand a directory entry, charging the child node's page span."""
        if entry.is_object:
            raise IndexError_(f"cannot expand object entry {entry.ref}")
        record_id = self._record_ids.get(entry.ref)
        if record_id is None:
            raise IndexError_(f"node {entry.ref} was never persisted")
        self.buffer.get(record_id, tag)
        return list(self._rtree.node(entry.ref).entries)

    def object(self, oid: int) -> STObject:
        """Fetch the concrete object (its I/O was paid by the leaf read)."""
        return self.dataset.get(oid)

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------

    def insert_object(self, obj: STObject) -> None:
        """Insert a (new) dataset object directly into this tree.

        The object must already be part of :attr:`dataset` (use
        :meth:`STDataset.append_record`).  Its text cluster is assigned
        by nearest centroid when the tree is clustered; when an OE
        threshold is configured and the object's cohesion falls below
        it, the object joins the outlier side list instead of the tree.
        Changed nodes are re-persisted immediately (update costs show up
        in the write counters, like the paper's update analysis).

        Note that only the *structural* write is incremental — the write
        bumps :attr:`generation`, which invalidates the derived frozen
        stack (memoized snapshot, text matrix, kNNL sketch), so the next
        ``snapshot()`` pays a full re-freeze.  Write-heavy workloads
        should wrap the tree in :class:`repro.lsm.LiveIndex` instead:
        writes then land in a delta overlay, queries merge both sources,
        and re-freezing happens off the query path (``freeze_step()`` or
        the background freezer — see ``docs/UPDATES.md``).
        """
        # Validate membership + id consistency.
        if self.dataset.get(obj.oid) is not obj:
            raise IndexError_(
                f"object {obj.oid} is not the dataset's instance; append it "
                "to the dataset first"
            )
        label, cohesion = self._assign_cluster(obj)
        self._label_by_oid[obj.oid] = label
        threshold = self.config.outlier_threshold
        if threshold is not None and cohesion < threshold:
            # Outlier appends bypass flush(); bump the generation here so
            # snapshot/cache consumers still observe the mutation.
            self._outliers.append(obj)
            self.generation += 1
            self._snapshot_cache = None
            return
        entry = Entry.for_object(obj.oid, obj.mbr(), obj.vector, label)
        self._rtree.insert(entry)
        self.flush()

    def delete_object(self, oid: int) -> bool:
        """Remove an object directly from this tree (and the dataset).

        Returns False when the object is unknown to the index.  Like
        :meth:`insert_object`, the structural delete is incremental but
        invalidates the whole derived frozen stack; under sustained
        mixed traffic prefer :class:`repro.lsm.LiveIndex`, which turns
        deletes into tombstones and defers the re-freeze to a fold.
        """
        for i, outlier in enumerate(self._outliers):
            if outlier.oid == oid:
                del self._outliers[i]
                self._label_by_oid.pop(oid, None)
                self.dataset.remove_object(oid)
                self.generation += 1
                self._snapshot_cache = None
                return True
        try:
            obj = self.dataset.get(oid)
        except DatasetError:
            # The oid is gone from the dataset; make sure no stale
            # cluster label survives it (a label without an object would
            # desynchronize the ``labels`` view from the dataset).
            self._label_by_oid.pop(oid, None)
            return False
        removed = self._rtree.delete(oid, obj.mbr())
        if not removed:
            return False
        self._label_by_oid.pop(oid, None)
        self.dataset.remove_object(oid)
        self.flush()
        return True

    def _strip_intersections(self, node_ids) -> None:
        """Degrade directory entries to IR-tree form (union weights only).

        Leaf object entries keep their exact vectors — an IR-tree also
        stores full documents at the leaf level; only pseudo-documents of
        directory nodes lose their minimum weights.
        """
        for nid in list(node_ids):
            node = self._rtree.nodes.get(nid)
            if node is None or node.is_leaf:
                continue
            node.entries = [e.without_intersections() for e in node.entries]

    def flush(self) -> None:
        """Re-persist nodes changed by updates; free removed records."""
        self._root_entry_cache = None
        self.generation += 1
        self._snapshot_cache = None
        rtree = self._rtree
        if not self.config.store_intersections:
            self._strip_intersections(rtree.dirty)
        for nid in sorted(rtree.removed):
            record_id = self._record_ids.pop(nid, None)
            if record_id is not None:
                if self.buffer.contains(record_id):
                    self.buffer.invalidate(record_id)
                self.disk.free(record_id)
        rtree.removed.clear()
        for nid in sorted(rtree.dirty):
            node = rtree.nodes.get(nid)
            if node is None:
                continue
            data = node.encode()
            record_id = self._record_ids.get(nid)
            if record_id is None:
                record_id = self.disk.allocate(data)
                node.record_id = record_id
                self._record_ids[nid] = record_id
            else:
                if self.buffer.contains(record_id):
                    self.buffer.invalidate(record_id)
                self.disk.rewrite(record_id, data)
        rtree.dirty.clear()

    def assign_cluster(self, obj: STObject) -> tuple:
        """``(label, cohesion)`` this tree would give a new document.

        Public so the live-update overlay (:mod:`repro.lsm`) can label
        overlay inserts consistently with the frozen clustering; plain
        IUR-trees always answer ``(0, 1.0)``-ish (single cluster).
        """
        return self._assign_cluster(obj)

    def cluster_label(self, oid: int) -> int:
        """The stored cluster label of an indexed object."""
        try:
            return self._label_by_oid[oid]
        except KeyError:
            raise IndexError_(f"object {oid} is not indexed") from None

    def _assign_cluster(self, obj: STObject) -> tuple:
        """(label, cohesion) for a new document."""
        clustering = getattr(self, "clustering", None)
        if clustering is None or not clustering.centroids:
            return 0, 1.0
        unit = obj.vector.normalized()
        best_label, best_sim = 0, -1.0
        for label, centroid in enumerate(clustering.centroids):
            sim = unit.dot(centroid)
            if sim > best_sim:
                best_sim = sim
                best_label = label
        if not unit:
            return best_label, 1.0
        return best_label, best_sim

    def warm_kernels(self) -> int:
        """Pre-build frozen kernel forms for every stored summary vector.

        Freezing normally happens lazily on first use; warming at index
        time moves that cost out of the first queries (batch engines and
        benchmarks call this so measured queries run fully warm).
        Returns the number of vectors frozen.
        """
        frozen = 0
        for node in self._rtree.nodes.values():
            for entry in node.entries:
                for iv in entry.clusters.values():
                    iv.intersection.frozen()
                    iv.union.frozen()
                    frozen += 2
        root = self.root_entry()
        if root is not None:
            for iv in root.clusters.values():
                iv.intersection.frozen()
                iv.union.frozen()
                frozen += 2
        for obj in self._outliers:
            obj.vector.frozen()
            frozen += 1
        return frozen

    def snapshot(self):
        """The columnar :class:`~repro.perf.snapshot.IndexSnapshot`.

        Frozen lazily from the current structure and memoized until the
        next mutation (the cache is keyed by :attr:`generation`); every
        searcher running ``engine="snapshot"`` against an unchanged tree
        shares one snapshot.
        """
        from ..perf import kernels

        cached = self._snapshot_cache
        if (
            cached is not None
            and cached.generation == self.generation
            # A backend switch invalidates the pre-frozen kernel forms
            # captured in the snapshot (parity runs flip REPRO_KERNEL).
            and cached.kernel_backend == kernels.backend_name()
        ):
            return cached
        from ..perf.snapshot import IndexSnapshot

        snap = IndexSnapshot.from_tree(self)
        self._snapshot_cache = snap
        return snap

    def __getstate__(self) -> dict:
        # The snapshot is a derived per-process cache full of frozen
        # kernel forms (possibly numpy arrays); rebuild after unpickling
        # rather than shipping it to batch workers.
        state = self.__dict__.copy()
        state["_snapshot_cache"] = None
        return state

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------

    def reset_io(self, cold: bool = True) -> None:
        """Zero the I/O counters; ``cold=True`` also empties the buffer."""
        self.io.reset()
        if cold:
            self.buffer.clear()

    @property
    def rtree(self) -> RTree:
        """The underlying structural tree (tests and invariants)."""
        return self._rtree

    @property
    def outliers(self) -> List[STObject]:
        """Objects held outside the tree by OE extraction."""
        return list(self._outliers)

    @property
    def labels(self) -> List[int]:
        """Cluster label per object, aligned with ``dataset.objects``."""
        return [self._label_by_oid[o.oid] for o in self.dataset.objects]

    def num_clusters(self) -> int:
        """Number of text clusters the index was built with."""
        labels = self._label_by_oid.values()
        return max(labels, default=-1) + 1

    def stats(self) -> IndexStats:
        """Structural and footprint statistics snapshot."""
        nodes = len(self._rtree.nodes)
        leaves = sum(1 for n in self._rtree.nodes.values() if n.is_leaf)
        return IndexStats(
            kind=self.kind,
            objects=len(self.dataset),
            nodes=nodes,
            leaves=leaves,
            height=self._rtree.height(),
            pages=self.disk.total_pages,
            bytes=self.disk.total_bytes,
            clusters=self.num_clusters(),
            outliers=len(self._outliers),
            build_seconds=self._build_seconds,
        )

    def check_invariants(self, enforce_min_fill: bool = False) -> None:
        """Structural + persistence invariants (tests)."""
        self._rtree.check_invariants(enforce_min_fill)
        for nid in self._rtree.nodes:
            if self._rtree.root_id is not None and nid not in self._record_ids:
                # Nodes orphaned by splits would show up here.
                if self._reachable(nid):
                    raise IndexError_(f"reachable node {nid} not persisted")

    def _reachable(self, node_id: int) -> bool:
        if self._rtree.root_id is None:
            return False
        stack = [self._rtree.root_id]
        while stack:
            nid = stack.pop()
            if nid == node_id:
                return True
            node = self._rtree.node(nid)
            if not node.is_leaf:
                stack.extend(e.ref for e in node.entries)
        return False

    def node_for_test(self, node_id: int) -> Node:
        """Direct node access for white-box tests."""
        return self._rtree.node(node_id)
