"""Tree entries: the unit the search algorithm reasons about.

An :class:`Entry` describes either a subtree (directory entry) or a single
object (leaf entry) with everything the bounds need:

* an MBR;
* the number of objects beneath it;
* per-text-cluster interval vectors (the IUR-tree is the special case of
  a single cluster ``0``; the CIUR-tree stores one summary per cluster
  present in the subtree).

Entries are value objects — the searcher moves them between frontier,
pruned, and answer sets freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import IndexError_
from ..spatial import Rect
from ..text import IntervalVector, SparseVector
from ..text.entropy import cluster_entropy


@dataclass(frozen=True)
class Entry:
    """Immutable directory or object entry.

    Attributes:
        ref: Child node id (directory entry) or object id (object entry).
        mbr: Bounding rectangle (degenerate point box for objects).
        is_object: True for leaf-level object entries.
        clusters: ``cluster_id -> IntervalVector`` textual summaries; the
            per-cluster ``doc_count`` values sum to :attr:`count`.
    """

    ref: int
    mbr: Rect
    is_object: bool
    clusters: Dict[int, IntervalVector] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if not self.clusters:
            raise IndexError_(f"entry {self.ref} has no textual summary")
        total = sum(iv.doc_count for iv in self.clusters.values())
        if self.is_object and total != 1:
            raise IndexError_(
                f"object entry {self.ref} summarizes {total} documents"
            )
        object.__setattr__(self, "_count", total)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return (
            self.ref == other.ref
            and self.is_object == other.is_object
            and self.mbr == other.mbr
        )

    def __hash__(self) -> int:
        return hash((self.ref, self.is_object, self.mbr))

    @property
    def count(self) -> int:
        """Number of objects beneath this entry (1 for object entries)."""
        return self._count  # type: ignore[attr-defined]  # set in __post_init__

    def exact_vector(self) -> SparseVector:
        """The concrete document vector of an object entry."""
        if not self.is_object:
            raise IndexError_(f"entry {self.ref} is not an object entry")
        (iv,) = self.clusters.values()
        return iv.union

    def merged_interval(self) -> IntervalVector:
        """Cluster-blind summary (what a plain IUR-tree node would store)."""
        return IntervalVector.merge(self.clusters.values())

    def entropy(self) -> float:
        """Shannon entropy of the cluster histogram — the TE signal."""
        return cluster_entropy(
            {cid: iv.doc_count for cid, iv in self.clusters.items()}
        )

    def without_intersections(self) -> "Entry":
        """A copy whose textual summaries keep only union (max) weights.

        Models a plain IR-tree directory entry; all textual lower bounds
        computed through it collapse to 0.
        """
        stripped = {
            cid: IntervalVector(SparseVector({}), iv.union, iv.doc_count)
            for cid, iv in self.clusters.items()
        }
        return Entry(
            ref=self.ref,
            mbr=self.mbr,
            is_object=self.is_object,
            clusters=stripped,
        )

    @staticmethod
    def for_object(
        oid: int, mbr: Rect, vector: SparseVector, cluster_id: int = 0
    ) -> "Entry":
        """Build the exact entry of one object."""
        return Entry(
            ref=oid,
            mbr=mbr,
            is_object=True,
            clusters={cluster_id: IntervalVector.from_document(vector)},
        )

    @staticmethod
    def for_subtree(node_id: int, mbr: Rect, children: List["Entry"]) -> "Entry":
        """Summarize child entries into a directory entry.

        Per-cluster summaries merge only with the same cluster id, which
        is what keeps CIUR-tree bounds tight.
        """
        if not children:
            raise IndexError_(f"subtree entry {node_id} has no children")
        grouped: Dict[int, List[IntervalVector]] = {}
        for child in children:
            for cid, iv in child.clusters.items():
                grouped.setdefault(cid, []).append(iv)
        merged = {cid: IntervalVector.merge(parts) for cid, parts in grouped.items()}
        return Entry(ref=node_id, mbr=mbr, is_object=False, clusters=merged)
