"""Outlier detection & extraction (the OE optimization of the CIUR-tree).

A document far from its text-cluster centroid stretches the cluster's
interval vectors and loosens every bound computed through them.  OE pulls
such documents out of the tree: they are kept in a small side list that
the searcher handles exactly (each outlier becomes a pre-expanded object
entry on the initial frontier), while the remaining documents produce
tight per-cluster summaries.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigError
from ..text.clustering import ClusteringResult


def split_outliers(
    clustering: ClusteringResult, threshold: float
) -> Tuple[List[int], List[int]]:
    """Partition document indices into (core, outliers) by cohesion.

    Args:
        clustering: A fitted clustering with per-document cohesion (cosine
            to the assigned centroid).
        threshold: Documents with cohesion strictly below this are
            outliers.  0 extracts nothing; 1 extracts everything not
            exactly on its centroid.

    Returns:
        ``(core_indices, outlier_indices)``, both sorted ascending.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ConfigError(f"outlier threshold must be in [0, 1], got {threshold}")
    core: List[int] = []
    outliers: List[int] = []
    for i, cohesion in enumerate(clustering.cohesion):
        if cohesion < threshold:
            outliers.append(i)
        else:
            core.append(i)
    return core, outliers
