"""A from-scratch R-tree over spatial-textual entries.

Structure-wise this is a classic Guttman R-tree (quadratic split) with an
STR (Sort-Tile-Recursive) bulk loader; entry-wise it already carries the
IUR augmentation, because :meth:`Entry.for_subtree` merges the per-cluster
interval vectors of children whenever a directory entry is (re)built.
The IUR/CIUR trees in this package are therefore thin layers adding
persistence and cluster assignment on top of this structural core.

Purely spatial queries (range, k-nearest by distance) are provided for
tests, examples, and the spatial baseline.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import IndexError_
from ..spatial import Point, Rect
from .entry import Entry
from .node import Node


class RTree:
    """In-memory R-tree of :class:`Entry` objects."""

    def __init__(self, max_entries: int = 16, min_entries: int = 4) -> None:
        if max_entries < 2:
            raise IndexError_(f"max_entries must be >= 2, got {max_entries}")
        if not 1 <= min_entries <= max_entries // 2:
            raise IndexError_(
                f"min_entries must be in [1, max_entries/2], got {min_entries}"
            )
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.nodes: Dict[int, Node] = {}
        self.root_id: Optional[int] = None
        self._next_node_id = 0
        #: Nodes whose entries changed since the last flush; consumed by
        #: the persistence layer to rewrite only what moved.
        self.dirty: Set[int] = set()
        #: Nodes removed from the tree since the last flush.
        self.removed: Set[int] = set()

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Look up a node by id (raises on unknown ids)."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise IndexError_(f"unknown node id {node_id}") from None

    @property
    def root(self) -> Node:
        """The root node (raises when the tree is empty)."""
        if self.root_id is None:
            raise IndexError_("tree is empty")
        return self.node(self.root_id)

    def _new_node(self, is_leaf: bool) -> Node:
        node = Node(node_id=self._next_node_id, is_leaf=is_leaf)
        self._next_node_id += 1
        self.nodes[node.node_id] = node
        self.dirty.add(node.node_id)
        return node

    def height(self) -> int:
        """Levels from root to leaves (a single leaf root has height 1)."""
        if self.root_id is None:
            return 0
        h = 1
        node = self.root
        while not node.is_leaf:
            node = self.node(node.entries[0].ref)
            h += 1
        return h

    def object_count(self) -> int:
        """Total objects stored in the tree."""
        return self.root.object_count() if self.root_id is not None else 0

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[Entry],
        max_entries: int = 16,
        min_entries: int = 4,
    ) -> "RTree":
        """Sort-Tile-Recursive packing of object entries into a tree."""
        tree = cls(max_entries, min_entries)
        objects = list(items)
        if not objects:
            return tree
        # Pack object entries into leaves.
        leaf_groups = _str_pack(objects, max_entries)
        level_nodes: List[Node] = []
        for group in leaf_groups:
            node = tree._new_node(is_leaf=True)
            node.entries = list(group)
            level_nodes.append(node)
        # Build directory levels until a single root remains.
        while len(level_nodes) > 1:
            parent_entries = [
                Entry.for_subtree(n.node_id, n.mbr(), n.entries) for n in level_nodes
            ]
            groups = _str_pack(parent_entries, max_entries)
            next_level: List[Node] = []
            for group in groups:
                node = tree._new_node(is_leaf=False)
                node.entries = list(group)
                for child_entry in group:
                    tree.node(child_entry.ref).parent_id = node.node_id
                next_level.append(node)
            level_nodes = next_level
        tree.root_id = level_nodes[0].node_id
        return tree

    # ------------------------------------------------------------------
    # Incremental insertion
    # ------------------------------------------------------------------

    def insert(self, entry: Entry) -> None:
        """Insert an object entry, splitting on overflow (quadratic)."""
        if not entry.is_object:
            raise IndexError_("insert expects an object entry")
        if self.root_id is None:
            root = self._new_node(is_leaf=True)
            root.entries.append(entry)
            self.root_id = root.node_id
            return
        leaf = self._choose_leaf(self.root, entry.mbr)
        leaf.entries.append(entry)
        self.dirty.add(leaf.node_id)
        self._handle_overflow(leaf)
        self._refresh_upward(leaf.node_id)

    def _choose_leaf(self, node: Node, mbr: Rect) -> Node:
        while not node.is_leaf:
            best_entry = min(
                node.entries,
                key=lambda e: (e.mbr.enlargement(mbr), e.mbr.area(), e.ref),
            )
            node = self.node(best_entry.ref)
        return node

    def _handle_overflow(self, node: Node) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._split(node)
            self.dirty.add(node.node_id)
            self.dirty.add(sibling.node_id)
            parent = (
                self.node(node.parent_id) if node.parent_id is not None else None
            )
            if parent is None:
                # Grow a new root above the split pair.
                new_root = self._new_node(is_leaf=False)
                for child in (node, sibling):
                    child.parent_id = new_root.node_id
                    new_root.entries.append(
                        Entry.for_subtree(child.node_id, child.mbr(), child.entries)
                    )
                self.root_id = new_root.node_id
                return
            sibling.parent_id = parent.node_id
            self.dirty.add(parent.node_id)
            parent.entries = [e for e in parent.entries if e.ref != node.node_id]
            parent.entries.append(
                Entry.for_subtree(node.node_id, node.mbr(), node.entries)
            )
            parent.entries.append(
                Entry.for_subtree(sibling.node_id, sibling.mbr(), sibling.entries)
            )
            node = parent

    def _split(self, node: Node) -> Node:
        """Guttman quadratic split; returns the new sibling node."""
        entries = node.entries
        seed_a, seed_b = _pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        mbr_a = group_a[0].mbr
        mbr_b = group_b[0].mbr
        while remaining:
            # Force-assign when a group must absorb all remaining entries
            # to reach the minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            idx = _pick_next(remaining, mbr_a, mbr_b)
            entry = remaining.pop(idx)
            grow_a = mbr_a.enlargement(entry.mbr)
            grow_b = mbr_b.enlargement(entry.mbr)
            if (grow_a, mbr_a.area(), len(group_a)) <= (
                grow_b,
                mbr_b.area(),
                len(group_b),
            ):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)
        sibling = self._new_node(is_leaf=node.is_leaf)
        node.entries = group_a
        sibling.entries = group_b
        if not node.is_leaf:
            for e in sibling.entries:
                self.node(e.ref).parent_id = sibling.node_id
        return sibling

    def _refresh_upward(self, node_id: int) -> None:
        """Rebuild ancestors' directory entries after a subtree changed."""
        node = self.node(node_id)
        while node.parent_id is not None:
            parent = self.node(node.parent_id)
            self.dirty.add(parent.node_id)
            parent.entries = [
                Entry.for_subtree(node.node_id, node.mbr(), node.entries)
                if e.ref == node.node_id
                else e
                for e in parent.entries
            ]
            node = parent

    # ------------------------------------------------------------------
    # Deletion (Guttman Delete + CondenseTree)
    # ------------------------------------------------------------------

    def delete(self, oid: int, location: Rect) -> bool:
        """Delete the object entry ``oid`` whose MBR is ``location``.

        Classic R-tree deletion: find the hosting leaf, remove the entry,
        condense the tree (underflowing nodes are dissolved and their
        objects reinserted), and shrink the root while it has a single
        directory child.  Returns False when the object is absent.
        """
        if self.root_id is None:
            return False
        leaf = self._find_leaf(self.root, oid, location)
        if leaf is None:
            return False
        leaf.entries = [e for e in leaf.entries if e.ref != oid]
        self.dirty.add(leaf.node_id)
        orphans = self._condense(leaf)
        self._shrink_root()
        for orphan in orphans:
            if self.root_id is None:
                root = self._new_node(is_leaf=True)
                root.entries.append(orphan)
                self.root_id = root.node_id
            else:
                self.insert(orphan)
        self._shrink_root()
        return True

    def _find_leaf(self, node: Node, oid: int, location: Rect) -> Optional[Node]:
        if node.is_leaf:
            if any(e.ref == oid for e in node.entries):
                return node
            return None
        for entry in node.entries:
            if entry.mbr.contains_rect(location):
                found = self._find_leaf(self.node(entry.ref), oid, location)
                if found is not None:
                    return found
        return None

    def _condense(self, node: Node) -> List[Entry]:
        """Dissolve underflowing ancestors, collecting orphaned objects."""
        orphans: List[Entry] = []
        current = node
        while current.parent_id is not None:
            parent = self.node(current.parent_id)
            if len(current.entries) < self.min_entries:
                parent.entries = [
                    e for e in parent.entries if e.ref != current.node_id
                ]
                self.dirty.add(parent.node_id)
                orphans.extend(self._collect_objects(current))
                self._discard_subtree(current)
            else:
                parent.entries = [
                    Entry.for_subtree(
                        current.node_id, current.mbr(), current.entries
                    )
                    if e.ref == current.node_id
                    else e
                    for e in parent.entries
                ]
                self.dirty.add(parent.node_id)
            current = parent
        if current.node_id == self.root_id and not current.entries:
            self._discard_subtree(current)
            self.root_id = None
        return orphans

    def _shrink_root(self) -> None:
        while self.root_id is not None:
            root = self.root
            if root.is_leaf or len(root.entries) != 1:
                return
            child = self.node(root.entries[0].ref)
            child.parent_id = None
            self.root_id = child.node_id
            self.nodes.pop(root.node_id, None)
            self.dirty.discard(root.node_id)
            self.removed.add(root.node_id)

    def _collect_objects(self, node: Node) -> List[Entry]:
        out: List[Entry] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.entries)
            else:
                stack.extend(self.node(e.ref) for e in current.entries)
        return out

    def _discard_subtree(self, node: Node) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            if not current.is_leaf:
                stack.extend(self.node(e.ref) for e in current.entries)
            self.nodes.pop(current.node_id, None)
            self.dirty.discard(current.node_id)
            self.removed.add(current.node_id)

    # ------------------------------------------------------------------
    # Spatial queries
    # ------------------------------------------------------------------

    def range_search(self, rect: Rect) -> List[int]:
        """Object ids whose points fall inside ``rect``."""
        if self.root_id is None:
            return []
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not rect.intersects(entry.mbr):
                    continue
                if node.is_leaf:
                    out.append(entry.ref)
                else:
                    stack.append(self.node(entry.ref))
        return sorted(out)

    def nearest(self, point: Point, k: int = 1) -> List[Tuple[int, float]]:
        """The k nearest object ids by Euclidean distance (best-first)."""
        if self.root_id is None or k < 1:
            return []
        counter = itertools.count()
        heap: List[Tuple[float, int, Optional[Node], Optional[Entry]]] = [
            (0.0, next(counter), self.root, None)
        ]
        results: List[Tuple[int, float]] = []
        while heap and len(results) < k:
            dist, _, node, obj_entry = heapq.heappop(heap)
            if obj_entry is not None:
                results.append((obj_entry.ref, dist))
                continue
            assert node is not None
            for entry in node.entries:
                d = entry.mbr.min_dist_point(point)
                if node.is_leaf:
                    heapq.heappush(heap, (d, next(counter), None, entry))
                else:
                    heapq.heappush(
                        heap, (d, next(counter), self.node(entry.ref), None)
                    )
        return results

    # ------------------------------------------------------------------
    # Invariants (exercised by property tests)
    # ------------------------------------------------------------------

    def check_invariants(self, enforce_min_fill: bool = True) -> None:
        """Raise :class:`IndexError_` on any structural violation.

        ``enforce_min_fill=False`` skips the minimum-fanout check, which
        STR bulk loading legitimately violates in trailing groups.
        """
        if self.root_id is None:
            return
        seen_objects: List[int] = []
        stack: List[Tuple[int, Optional[Rect]]] = [(self.root_id, None)]
        leaf_depths = set()
        depth_of: Dict[int, int] = {self.root_id: 1}
        while stack:
            node_id, parent_mbr = stack.pop()
            node = self.node(node_id)
            if not node.entries:
                raise IndexError_(f"node {node_id} is empty")
            if len(node.entries) > self.max_entries:
                raise IndexError_(
                    f"node {node_id} fanout {len(node.entries)} exceeds "
                    f"{self.max_entries}"
                )
            if (
                enforce_min_fill
                and node_id != self.root_id
                and len(node.entries) < self.min_entries
            ):
                raise IndexError_(
                    f"node {node_id} fanout {len(node.entries)} below minimum "
                    f"{self.min_entries}"
                )
            if parent_mbr is not None and not parent_mbr.contains_rect(node.mbr()):
                raise IndexError_(f"node {node_id} escapes its parent entry MBR")
            if node.is_leaf:
                leaf_depths.add(depth_of[node_id])
                seen_objects.extend(e.ref for e in node.entries)
                for e in node.entries:
                    if not e.is_object:
                        raise IndexError_(f"leaf {node_id} holds a subtree entry")
            else:
                for e in node.entries:
                    if e.is_object:
                        raise IndexError_(f"inner node {node_id} holds an object")
                    child = self.node(e.ref)
                    if child.parent_id != node_id:
                        raise IndexError_(
                            f"child {e.ref} has wrong parent pointer"
                        )
                    if not e.mbr.contains_rect(child.mbr()):
                        raise IndexError_(f"entry MBR of child {e.ref} too small")
                    if e.count != child.object_count():
                        raise IndexError_(f"entry count of child {e.ref} stale")
                    depth_of[e.ref] = depth_of[node_id] + 1
                    stack.append((e.ref, e.mbr))
        if len(leaf_depths) > 1:
            raise IndexError_(f"leaves at multiple depths: {sorted(leaf_depths)}")
        if len(set(seen_objects)) != len(seen_objects):
            raise IndexError_("duplicate object ids in leaves")


# ----------------------------------------------------------------------
# STR packing and quadratic-split helpers
# ----------------------------------------------------------------------


def _str_pack(entries: List[Entry], capacity: int) -> List[List[Entry]]:
    """Sort-Tile-Recursive grouping of entries into runs of ``capacity``."""
    import math

    n = len(entries)
    if n <= capacity:
        return [list(entries)]
    by_x = sorted(entries, key=lambda e: (e.mbr.center().x, e.mbr.center().y, e.ref))
    num_leaves = math.ceil(n / capacity)
    num_slices = math.ceil(math.sqrt(num_leaves))
    slice_size = math.ceil(n / num_slices)
    groups: List[List[Entry]] = []
    for s in range(0, n, slice_size):
        strip = sorted(
            by_x[s : s + slice_size],
            key=lambda e: (e.mbr.center().y, e.mbr.center().x, e.ref),
        )
        for g in range(0, len(strip), capacity):
            groups.append(strip[g : g + capacity])
    return groups


def _pick_seeds(entries: List[Entry]) -> Tuple[int, int]:
    """Quadratic PickSeeds: the pair wasting the most dead area."""
    best = (0, 1)
    best_waste = float("-inf")
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            a, b = entries[i].mbr, entries[j].mbr
            waste = a.union(b).area() - a.area() - b.area()
            if waste > best_waste:
                best_waste = waste
                best = (i, j)
    return best


def _pick_next(remaining: List[Entry], mbr_a: Rect, mbr_b: Rect) -> int:
    """PickNext: the entry with the strongest group preference."""
    best_idx = 0
    best_diff = -1.0
    for i, entry in enumerate(remaining):
        diff = abs(mbr_a.enlargement(entry.mbr) - mbr_b.enlargement(entry.mbr))
        if diff > best_diff:
            best_diff = diff
            best_idx = i
    return best_idx
