"""Index substrate: R-tree, IUR-tree, CIUR-tree and their statistics."""

from .entry import Entry
from .node import Node
from .rtree import RTree
from .iurtree import IURTree
from .ciurtree import CIURTree
from .outliers import split_outliers
from .stats import IndexStats

__all__ = [
    "Entry",
    "Node",
    "RTree",
    "IURTree",
    "CIURTree",
    "split_outliers",
    "IndexStats",
]
