"""Index statistics: structure, footprint, and build cost summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class IndexStats:
    """Snapshot of an index's shape and simulated footprint."""

    kind: str
    objects: int
    nodes: int
    leaves: int
    height: int
    pages: int
    bytes: int
    clusters: int
    outliers: int
    build_seconds: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dict of the statistics, for experiment logging."""
        return {
            "kind": self.kind,
            "objects": self.objects,
            "nodes": self.nodes,
            "leaves": self.leaves,
            "height": self.height,
            "pages": self.pages,
            "bytes": self.bytes,
            "clusters": self.clusters,
            "outliers": self.outliers,
            "build_seconds": self.build_seconds,
        }
