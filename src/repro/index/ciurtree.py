"""The CIUR-tree: cluster-enhanced IUR-tree with OE and TE hooks.

Documents are clustered by textual similarity (spherical k-means); every
node entry stores one interval vector *per cluster present in its
subtree*, which keeps the textual envelopes tight when a subtree mixes
textually different objects.  Two optional enhancements from the paper:

* **OE — outlier extraction**: documents with low cohesion to their
  cluster centroid are removed from the tree and handled exactly (see
  :mod:`repro.index.outliers`);
* **TE — text-entropy priority**: the tree exposes per-entry cluster
  entropy so the searcher can prefer expanding textually mixed (loosely
  bounded) nodes first.  The flag lives in :class:`IndexConfig`; the
  behaviour itself is implemented by the searcher.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..config import IndexConfig
from ..model.dataset import STDataset
from ..text.clustering import ClusteringResult, SphericalKMeans
from .iurtree import IURTree
from .outliers import split_outliers


class CIURTree(IURTree):
    """Clustered IUR-tree."""

    kind = "ciur"

    @classmethod
    def build(
        cls,
        dataset: STDataset,
        config: Optional[IndexConfig] = None,
        method: str = "str",
        clustering: Optional[ClusteringResult] = None,
        seed: int = 7,
    ) -> "CIURTree":
        """Cluster the corpus, optionally extract outliers, then build.

        Args:
            dataset: The corpus to index.
            config: Index knobs; ``num_clusters`` and ``outlier_threshold``
                drive the clustered behaviour.
            method: Structural build method (``"str"`` or ``"insert"``).
            clustering: A pre-fitted clustering to reuse (e.g. to share
                labels across ablation variants); fitted here when absent.
            seed: RNG seed for k-means when fitting.
        """
        cfg = config if config is not None else IndexConfig()
        started = time.perf_counter()
        fitted = clustering
        if fitted is None:
            kmeans = SphericalKMeans(cfg.num_clusters, seed=seed)
            fitted = kmeans.fit(dataset.vectors())
        labels = list(fitted.labels)

        if cfg.outlier_threshold is not None:
            core_idx, outlier_idx = split_outliers(fitted, cfg.outlier_threshold)
        else:
            core_idx, outlier_idx = list(range(len(dataset))), []

        core_objects = [dataset.objects[i] for i in core_idx]
        core_labels = [labels[i] for i in core_idx]
        outliers = [dataset.objects[i] for i in outlier_idx]

        rtree = cls._build_structure(core_objects, core_labels, cfg, method)
        elapsed = time.perf_counter() - started
        tree = cls(
            dataset, cfg, rtree, labels, outliers=outliers, build_seconds=elapsed
        )
        tree.clustering = fitted
        return tree

    #: Fitted clustering, attached by :meth:`build`.
    clustering: Optional[ClusteringResult] = None

    def cluster_sizes(self) -> List[int]:
        """Documents per cluster (over the whole dataset, incl. outliers)."""
        n = self.num_clusters()
        sizes = [0] * n
        for label in self.labels:
            sizes[label] += 1
        return sizes
