"""Common metadata block for ``BENCH_*.json`` reports.

Every benchmark script stamps its report with :func:`bench_metadata` so
the JSON files checked in across PRs form a comparable trajectory: the
schema version says how to read the numbers, the commit/timestamp say
where they came from, and the interpreter/numpy versions say what they
ran on.
"""

from __future__ import annotations

import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

#: Bump when the shape of the benchmark reports changes incompatibly.
SCHEMA_VERSION = 1


def _git_commit() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else None


def bench_metadata() -> Dict[str, Optional[str]]:
    """The standard provenance block embedded in every bench report."""
    numpy_version: Optional[str] = None
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        pass
    return {
        "schema_version": SCHEMA_VERSION,
        "git_commit": _git_commit(),
        "generated_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python_version": platform.python_version(),
        "numpy_version": numpy_version,
    }
