"""Experiment drivers: one function per experiment of DESIGN.md §5.

Each ``run_eN`` function executes the corresponding sweep at a laptop
scale, returns ``(headers, rows)`` ready for :func:`format_table`, and is
shared between the CLI (`repro-rstknn run E1`) and the pytest benchmark
suite (which times the individual cells).  Every driver asserts result
parity between methods before reporting — these are exact algorithms, so
any disagreement is a bug, not a data point.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import IndexConfig, SimilarityConfig
from ..core.bichromatic import BichromaticRSTkNN
from ..core.topk import TopKSearcher
from ..errors import ConfigError
from ..index.iurtree import IURTree
from ..model.dataset import STDataset
from ..workloads import (
    WorkloadSpec,
    cd_like,
    generate_corpus,
    generate_user_corpus,
    gn_like,
    sample_queries,
    shop_like,
)
from .harness import (
    METHODS,
    QueryRun,
    build_tree,
    run_baseline_queries,
    run_queries,
)

Table = Tuple[List[str], List[List[str]]]

#: Default experiment scale; kept modest so the full suite runs in
#: minutes.  The CLI exposes ``--scale`` to grow it.
DEFAULT_N = 800
DEFAULT_QUERIES = 5
DEFAULT_K = 5


def _dataset(n: int = DEFAULT_N, config: Optional[SimilarityConfig] = None) -> STDataset:
    return gn_like(n=n, config=config)


def _assert_parity(results: Dict[str, List[int]]) -> None:
    """All exact methods must return identical result sets."""
    baseline = None
    for method, ids in results.items():
        if baseline is None:
            baseline = (method, ids)
            continue
        if ids != baseline[1]:
            raise AssertionError(
                f"result mismatch: {method} returned {len(ids)} ids, "
                f"{baseline[0]} returned {len(baseline[1])}"
            )


def _method_rows(
    dataset: STDataset,
    queries: Sequence,
    k: int,
    methods: Sequence[str] = METHODS,
    include_base: bool = True,
) -> List[QueryRun]:
    """Run every method over the same workload, with parity checking."""
    runs: List[QueryRun] = []
    parity: Dict[str, List[int]] = {}
    for method in methods:
        tree = build_tree(dataset, method)
        if method == "base":
            if not include_base:
                continue
            run = run_baseline_queries(tree, queries, k)
            from ..core.baseline import ThresholdBaseline

            parity[method] = ThresholdBaseline(tree).search(queries[0], k)
        else:
            run = run_queries(tree, queries, k, method=method)
            from ..core.rstknn import RSTkNNSearcher

            parity[method] = RSTkNNSearcher(tree).search(queries[0], k).ids
        runs.append(run)
    _assert_parity(parity)
    return runs


# ----------------------------------------------------------------------
# E1 — query cost vs k
# ----------------------------------------------------------------------


def run_e1(
    n: int = DEFAULT_N,
    ks: Sequence[int] = (1, 5, 10, 20),
    num_queries: int = DEFAULT_QUERIES,
) -> Table:
    """E1: query cost vs k, all methods (see DESIGN.md §5)."""
    dataset = _dataset(n)
    queries = sample_queries(dataset, num_queries)
    headers = ["k"] + QueryRun.HEADERS
    rows: List[List[str]] = []
    for k in ks:
        for run in _method_rows(dataset, queries, k):
            rows.append([str(k)] + run.as_row())
    return headers, rows


# ----------------------------------------------------------------------
# E2 — query cost vs alpha
# ----------------------------------------------------------------------


def run_e2(
    n: int = DEFAULT_N,
    alphas: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    num_queries: int = DEFAULT_QUERIES,
    k: int = DEFAULT_K,
) -> Table:
    """E2: query cost vs the spatial/textual blend alpha."""
    headers = ["alpha"] + QueryRun.HEADERS
    rows: List[List[str]] = []
    for alpha in alphas:
        dataset = _dataset(n, SimilarityConfig(alpha=alpha))
        queries = sample_queries(dataset, num_queries)
        for run in _method_rows(
            dataset,
            queries,
            k,
            methods=("iur", "ciur", "ciur-oe", "ciur-te", "ciur-oe-te"),
        ):
            rows.append([f"{alpha:.1f}"] + run.as_row())
    return headers, rows


# ----------------------------------------------------------------------
# E3 — scalability vs |D|
# ----------------------------------------------------------------------


def run_e3(
    sizes: Sequence[int] = (250, 500, 1000, 2000),
    num_queries: int = 5,
    k: int = DEFAULT_K,
    include_base: bool = True,
) -> Table:
    """E3: scalability vs dataset size, group methods vs baseline."""
    headers = ["|D|"] + QueryRun.HEADERS
    rows: List[List[str]] = []
    for n in sizes:
        dataset = _dataset(n)
        queries = sample_queries(dataset, num_queries)
        methods: Sequence[str] = ("base", "iur", "ciur") if include_base else ("iur", "ciur")
        for run in _method_rows(dataset, queries, k, methods=methods):
            rows.append([str(n)] + run.as_row())
    return headers, rows


# ----------------------------------------------------------------------
# E4 — pruning power
# ----------------------------------------------------------------------


def run_e4(
    n: int = DEFAULT_N, num_queries: int = DEFAULT_QUERIES, k: int = DEFAULT_K
) -> Table:
    """E4: pruning power — fraction of objects decided in bulk."""
    dataset = _dataset(n)
    queries = sample_queries(dataset, num_queries)
    headers = ["method", "group-decided %", "verified %", "expansions"]
    rows: List[List[str]] = []
    for method in ("iur", "ciur", "ciur-oe", "ciur-te", "ciur-oe-te"):
        tree = build_tree(dataset, method)
        run = run_queries(tree, queries, k, method=method)
        verified_pct = 100.0 * run.mean_verified / max(len(dataset), 1)
        rows.append(
            [
                method,
                f"{100 * run.group_decided_fraction:.2f}%",
                f"{verified_pct:.2f}%",
                f"{run.mean_expansions:.1f}",
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# E5 — number of text clusters NC
# ----------------------------------------------------------------------


def run_e5(
    n: int = DEFAULT_N,
    cluster_counts: Sequence[int] = (1, 4, 8, 16),
    num_queries: int = DEFAULT_QUERIES,
    k: int = DEFAULT_K,
) -> Table:
    """E5: effect of the CIUR-tree's cluster count NC."""
    dataset = _dataset(n)
    queries = sample_queries(dataset, num_queries)
    headers = ["NC"] + QueryRun.HEADERS + ["index pages"]
    rows: List[List[str]] = []
    for nc in cluster_counts:
        cfg = IndexConfig(num_clusters=nc)
        tree = build_tree(dataset, "ciur" if nc > 1 else "iur", cfg)
        run = run_queries(tree, queries, k, method=f"ciur(nc={nc})")
        rows.append([str(nc)] + run.as_row() + [str(tree.stats().pages)])
    return headers, rows


# ----------------------------------------------------------------------
# E6 — index construction cost
# ----------------------------------------------------------------------


def run_e6(n: int = DEFAULT_N) -> Table:
    """E6: index construction cost across datasets and variants."""
    headers = [
        "dataset",
        "method",
        "build s",
        "nodes",
        "height",
        "pages",
        "bytes",
        "outliers",
    ]
    rows: List[List[str]] = []
    for name, builder in (
        ("gn", lambda: gn_like(n=n)),
        ("cd", lambda: cd_like(n=max(2, int(n * 0.75)))),
        ("shop", lambda: shop_like(n=max(2, n // 2))),
    ):
        dataset = builder()
        for method in ("iur", "ciur", "ciur-oe"):
            tree = build_tree(dataset, method)
            st = tree.stats()
            rows.append(
                [
                    name,
                    method,
                    f"{st.build_seconds:.3f}",
                    str(st.nodes),
                    str(st.height),
                    str(st.pages),
                    str(st.bytes),
                    str(st.outliers),
                ]
            )
    return headers, rows


# ----------------------------------------------------------------------
# E7 — query keyword count
# ----------------------------------------------------------------------


def run_e7(
    n: int = DEFAULT_N,
    term_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    num_queries: int = DEFAULT_QUERIES,
    k: int = DEFAULT_K,
) -> Table:
    """E7: query cost vs number of query keywords."""
    dataset = _dataset(n)
    headers = ["query terms"] + QueryRun.HEADERS
    rows: List[List[str]] = []
    for terms in term_counts:
        queries = sample_queries(dataset, num_queries, query_terms=terms)
        for method in ("iur", "ciur"):
            tree = build_tree(dataset, method)
            run = run_queries(tree, queries, k, method=method)
            rows.append([str(terms)] + run.as_row())
    return headers, rows


# ----------------------------------------------------------------------
# E8 — dataset character
# ----------------------------------------------------------------------


def run_e8(
    n: int = DEFAULT_N, num_queries: int = DEFAULT_QUERIES, k: int = DEFAULT_K
) -> Table:
    """E8: dataset character (gazetteer / documents / categories)."""
    headers = ["dataset"] + QueryRun.HEADERS
    rows: List[List[str]] = []
    for name, builder in (
        ("gn", lambda: gn_like(n=n)),
        ("cd", lambda: cd_like(n=max(2, int(n * 0.75)))),
        ("shop", lambda: shop_like(n=max(2, n // 2))),
    ):
        dataset = builder()
        queries = sample_queries(dataset, num_queries)
        for run in _method_rows(
            dataset, queries, k, methods=("iur", "ciur", "ciur-oe-te"),
        ):
            rows.append([name] + run.as_row())
    return headers, rows


# ----------------------------------------------------------------------
# E9 — text measure ablation
# ----------------------------------------------------------------------


def run_e9(
    n: int = DEFAULT_N, num_queries: int = DEFAULT_QUERIES, k: int = DEFAULT_K
) -> Table:
    """E9: text measure ablation across all five measures."""
    headers = ["measure"] + QueryRun.HEADERS
    rows: List[List[str]] = []
    for measure in (
        "extended_jaccard",
        "cosine",
        "overlap",
        "dice",
        "weighted_jaccard",
    ):
        dataset = _dataset(n, SimilarityConfig(text_measure=measure))
        queries = sample_queries(dataset, num_queries)
        for run in _method_rows(dataset, queries, k, methods=("iur", "ciur")):
            rows.append([measure] + run.as_row())
    return headers, rows


# ----------------------------------------------------------------------
# E10 — ablations: OE threshold, buffer size
# ----------------------------------------------------------------------


def run_e10(
    n: int = DEFAULT_N, num_queries: int = DEFAULT_QUERIES, k: int = DEFAULT_K
) -> Table:
    """E10: OE threshold and buffer-pool size ablations."""
    dataset = _dataset(n)
    queries = sample_queries(dataset, num_queries)
    headers = ["variant"] + QueryRun.HEADERS
    rows: List[List[str]] = []
    for label, cfg, method in (
        ("oe=off", IndexConfig(num_clusters=8), "ciur"),
        ("oe=0.05", IndexConfig(num_clusters=8, outlier_threshold=0.05), "ciur-oe"),
        ("oe=0.1", IndexConfig(num_clusters=8, outlier_threshold=0.1), "ciur-oe"),
        ("oe=0.2", IndexConfig(num_clusters=8, outlier_threshold=0.2), "ciur-oe"),
        ("buffer=8", IndexConfig(num_clusters=8, buffer_pages=8), "ciur"),
        ("buffer=512", IndexConfig(num_clusters=8, buffer_pages=512), "ciur"),
    ):
        tree = build_tree(dataset, method, cfg)
        run = run_queries(tree, queries, k, method=label)
        rows.append([label] + run.as_row())
    return headers, rows


# ----------------------------------------------------------------------
# E11 — bichromatic BRSTkNN
# ----------------------------------------------------------------------


def run_e11(
    n_objects: int = 800,
    n_users: int = 300,
    ks: Sequence[int] = (1, 5, 10),
    num_queries: int = 4,
) -> Table:
    """E11: bichromatic BRSTkNN, group vs per-user."""
    spec = WorkloadSpec(n_objects=n_objects, seed=11)
    objects = STDataset.from_corpus(generate_corpus(spec))
    users = objects.derive(generate_user_corpus(spec, n_users))
    object_tree = IURTree.build(objects)
    user_tree = IURTree.build(users)
    bi = BichromaticRSTkNN(user_tree, object_tree)
    queries = sample_queries(objects, num_queries)
    headers = ["k", "method", "ms/query", "|result|", "obj expansions"]
    rows: List[List[str]] = []
    for k in ks:
        group_ms = per_user_ms = 0.0
        group_res = obj_exp = 0
        for query in queries:
            object_tree.reset_io()
            user_tree.reset_io()
            res = bi.search(query, k)
            group_ms += res.elapsed_seconds * 1000.0
            group_res += len(res)
            obj_exp += res.object_expansions
            started = time.perf_counter()
            per = bi.search_per_user(query, k)
            per_user_ms += (time.perf_counter() - started) * 1000.0
            if per != res.user_ids:
                raise AssertionError("bichromatic parity failure")
        nq = len(queries)
        rows.append(
            [
                str(k),
                "group",
                f"{group_ms / nq:.2f}",
                f"{group_res / nq:.1f}",
                f"{obj_exp / nq:.1f}",
            ]
        )
        rows.append(
            [str(k), "per-user", f"{per_user_ms / nq:.2f}", f"{group_res / nq:.1f}", "-"]
        )
    return headers, rows


# ----------------------------------------------------------------------
# E12 — batched top-k (shared buffer pool)
# ----------------------------------------------------------------------


def run_e12(
    n: int = DEFAULT_N,
    batch_sizes: Sequence[int] = (1, 10, 50, 100),
    k: int = 10,
) -> Table:
    """E12: batched top-k — the shared-buffer I/O saving."""
    dataset = _dataset(n)
    tree = build_tree(dataset, "iur")
    searcher = TopKSearcher(tree)
    headers = ["batch", "cold I/O / query", "shared I/O / query", "I/O saving"]
    rows: List[List[str]] = []
    for batch in batch_sizes:
        queries = sample_queries(dataset, batch, seed=100 + batch)
        cold_reads = 0
        for query in queries:
            tree.reset_io(cold=True)
            searcher.top_k(query, k)
            cold_reads += tree.io.reads
        tree.reset_io(cold=True)
        searcher.batch_topk(queries, k)
        shared_reads = tree.io.reads
        cold_per = cold_reads / batch
        shared_per = shared_reads / batch
        saving = 100.0 * (1.0 - shared_per / cold_per) if cold_per else 0.0
        rows.append(
            [str(batch), f"{cold_per:.1f}", f"{shared_per:.1f}", f"{saving:.1f}%"]
        )
    return headers, rows


# ----------------------------------------------------------------------
# E13 — construction strategy ablation (extension)
# ----------------------------------------------------------------------


def run_e13(
    n: int = DEFAULT_N, num_queries: int = DEFAULT_QUERIES, k: int = DEFAULT_K
) -> Table:
    """E13: construction strategies (STR / text-STR / insertion)."""
    from ..index.ciurtree import CIURTree

    dataset = shop_like(n=max(2, n // 2))
    queries = sample_queries(dataset, num_queries)
    headers = ["construction", "build s", "pages", "ms/query", "I/O reads"]
    rows: List[List[str]] = []
    parity: Dict[str, List[int]] = {}
    for method in ("str", "text-str", "insert"):
        tree = CIURTree.build(dataset, IndexConfig(num_clusters=8), method=method)
        run = run_queries(tree, queries, k, method=method)
        from ..core.rstknn import RSTkNNSearcher

        parity[method] = RSTkNNSearcher(tree).search(queries[0], k).ids
        st = tree.stats()
        rows.append(
            [
                method,
                f"{st.build_seconds:.3f}",
                str(st.pages),
                f"{run.mean_ms:.2f}",
                f"{run.mean_reads:.1f}",
            ]
        )
    _assert_parity(parity)
    return headers, rows


# ----------------------------------------------------------------------
# E14 — update throughput and cost-model accuracy (extension)
# ----------------------------------------------------------------------


def run_e14(n: int = DEFAULT_N, updates: int = 100, k: int = DEFAULT_K) -> Table:
    """E14: update throughput and cost-model accuracy."""
    import random

    from ..core.rstknn import RSTkNNSearcher
    from ..index.costmodel import estimate_rstknn_io
    from ..spatial import Point

    dataset = gn_like(n=n)
    tree = build_tree(dataset, "iur")
    rng = random.Random(71)
    terms = dataset.vocabulary.terms()[: max(10, len(dataset.vocabulary) // 4)]

    started = time.perf_counter()
    tree.io.reset()
    inserted = []
    for _ in range(updates):
        obj = dataset.append_record(
            Point(rng.uniform(0, 100), rng.uniform(0, 100)),
            " ".join(rng.sample(terms, min(3, len(terms)))),
        )
        tree.insert_object(obj)
        inserted.append(obj.oid)
    insert_s = time.perf_counter() - started
    insert_writes = tree.io.writes

    started = time.perf_counter()
    tree.io.reset()
    for oid in inserted:
        tree.delete_object(oid)
    delete_s = time.perf_counter() - started
    delete_writes = tree.io.writes

    searcher = RSTkNNSearcher(tree)
    queries = sample_queries(dataset, 4, seed=72)
    measured = predicted = 0
    for query in queries:
        tree.reset_io(cold=True)
        searcher.search(query, k)
        measured += tree.io.reads
        predicted += estimate_rstknn_io(tree, query, k).page_ios

    headers = ["metric", "value"]
    rows = [
        ["inserts/s", f"{updates / max(insert_s, 1e-9):.0f}"],
        ["page writes per insert", f"{insert_writes / updates:.1f}"],
        ["deletes/s", f"{updates / max(delete_s, 1e-9):.0f}"],
        ["page writes per delete", f"{delete_writes / updates:.1f}"],
        ["measured query I/O (4 queries)", str(measured)],
        ["cost-model predicted I/O", str(predicted)],
        ["prediction ratio", f"{predicted / max(measured, 1):.2f}"],
    ]
    return headers, rows


# ----------------------------------------------------------------------
# E15 — intersection-vector ablation: IUR-tree vs plain IR-tree
# ----------------------------------------------------------------------


def run_e15(n: int = 400, num_queries: int = 4) -> Table:
    """What the "I" in IUR buys, in two regimes.

    Default regime (blended similarity, keyword-sparse docs): subtree
    intersections are almost always empty, so stripping them changes
    nothing — an honest negative.  Text-dominant regime (alpha=0, overlap
    measure, per-category marker terms): intersections give non-zero
    textual lower bounds and visibly cut node reads and expansions.
    """
    from ..core.rstknn import RSTkNNSearcher
    from ..index.ciurtree import CIURTree

    headers = ["regime", "index", "I/O reads", "expansions", "verified"]
    rows: List[List[str]] = []

    regimes = [
        (
            "blended/sparse",
            STDataset.from_corpus(
                generate_corpus(WorkloadSpec(n_objects=n, seed=7)),
                SimilarityConfig(alpha=0.5),
            ),
        ),
        (
            "text-dominant/markers",
            STDataset.from_corpus(
                generate_corpus(
                    WorkloadSpec(
                        n_objects=n,
                        n_topics=4,
                        topic_marker=True,
                        topic_affinity=0.95,
                        doc_len_mean=2.0,
                        vocab_size=60,
                        seed=7,
                    )
                ),
                SimilarityConfig(alpha=0.0, weighting="tf", text_measure="overlap"),
            ),
        ),
    ]
    for regime, dataset in regimes:
        queries = sample_queries(dataset, num_queries, seed=2)
        parity: Dict[str, List[int]] = {}
        for label, store in (("iur", True), ("ir (no int)", False)):
            tree = CIURTree.build(
                dataset,
                IndexConfig(num_clusters=4, store_intersections=store),
                method="text-str",
            )
            searcher = RSTkNNSearcher(tree)
            reads = expansions = verified = 0
            for query in queries:
                tree.reset_io(cold=True)
                result = searcher.search(query, 3)
                reads += tree.io.reads
                expansions += result.stats.expansions
                verified += result.stats.verified_objects
            parity[label] = searcher.search(queries[0], 3).ids
            rows.append(
                [regime, label, str(reads), str(expansions), str(verified)]
            )
        _assert_parity(parity)
    return headers, rows


# ----------------------------------------------------------------------
# E16 — location selection: shared thresholds vs per-candidate RSTkNN
# ----------------------------------------------------------------------


def run_e16(
    n: int = 600, num_candidates: int = 20, k: int = DEFAULT_K
) -> Table:
    """E16: location selection vs naive per-candidate search."""
    import random as _random

    from ..core.location_selection import LocationSelector
    from ..core.rstknn import RSTkNNSearcher
    from ..spatial import Point

    dataset = gn_like(n=n)
    tree = build_tree(dataset, "iur")
    rng = _random.Random(41)
    region = dataset.region
    candidates = [
        Point(
            rng.uniform(region.xlo, region.xhi),
            rng.uniform(region.ylo, region.yhi),
        )
        for _ in range(num_candidates)
    ]
    text = " ".join(dataset.objects[0].keywords[:4])

    selector = LocationSelector(tree, k)
    tree.reset_io(cold=True)
    started = time.perf_counter()
    report = selector.select_best(candidates, text)
    shared_s = time.perf_counter() - started
    shared_reads = tree.io.reads

    searcher = RSTkNNSearcher(tree)
    tree.reset_io(cold=True)
    started = time.perf_counter()
    naive_best = -1
    for point in candidates:
        query = dataset.make_query(point, text)
        count = len(searcher.search(query, k).ids)
        naive_best = max(naive_best, count)
    naive_s = time.perf_counter() - started
    naive_reads = tree.io.reads
    if naive_best != report.best.count:
        raise AssertionError("location selection parity failure")

    headers = ["method", "total s", "I/O reads", "best influence"]
    rows = [
        [
            "shared-thresholds",
            f"{shared_s + report.preprocess_seconds:.2f}",
            str(shared_reads),
            str(report.best.count),
        ],
        [
            "  (preprocess)",
            f"{report.preprocess_seconds:.2f}",
            "-",
            "-",
        ],
        [
            "  (per-candidate)",
            f"{shared_s:.2f}",
            "-",
            "-",
        ],
        ["naive per-candidate RSTkNN", f"{naive_s:.2f}", str(naive_reads), str(naive_best)],
    ]
    return headers, rows


EXPERIMENTS = {
    "E1": (run_e1, "query cost vs k"),
    "E2": (run_e2, "query cost vs alpha"),
    "E3": (run_e3, "scalability vs |D|"),
    "E4": (run_e4, "pruning power"),
    "E5": (run_e5, "number of text clusters"),
    "E6": (run_e6, "index construction"),
    "E7": (run_e7, "query keyword count"),
    "E8": (run_e8, "dataset character"),
    "E9": (run_e9, "text measure ablation"),
    "E10": (run_e10, "OE / buffer ablations"),
    "E11": (run_e11, "bichromatic BRSTkNN"),
    "E12": (run_e12, "batched top-k"),
    "E13": (run_e13, "construction strategy ablation"),
    "E14": (run_e14, "updates + cost-model accuracy"),
    "E15": (run_e15, "intersection-vector (IUR vs IR) ablation"),
    "E16": (run_e16, "location selection vs per-candidate search"),
}


def run_experiment(name: str, **kwargs) -> Table:
    """Dispatch by experiment id (``E1`` … ``E12``)."""
    key = name.upper()
    if key not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {name!r}; expected one of {sorted(EXPERIMENTS)}"
        )
    fn, _ = EXPERIMENTS[key]
    return fn(**kwargs)
