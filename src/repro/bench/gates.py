"""Shared parity-gate and report helpers for the ``benchmarks/`` scripts.

Every ``BENCH_*.json`` producer used to carry its own copy of three
pieces of boilerplate: a parity gate that exits non-zero on any
divergence from a reference engine, a median-of-rounds QPS measurer,
and the report header block (provenance metadata plus the kernel
backend facts).  This module is the single home for all three, so a new
benchmark (``bench_approx.py`` being the first consumer) starts from
the same hard-gate discipline instead of re-deriving it.

Gates raise :class:`SystemExit` with a readable mismatch listing —
benchmarks are run as scripts and in CI, where a non-zero exit *is* the
failure signal.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Sequence

from ..perf import kernels
from .meta import bench_metadata

#: Wall time and memo-locality counters legitimately differ per engine,
#: so decision-parity comparisons exclude them.
TIMING_KEYS = frozenset(
    {"elapsed_seconds", "cache_hits", "cache_misses", "cache_evictions"}
)


def decisions(result) -> Dict[str, float]:
    """A result's decision counters with the timing keys stripped.

    ``result`` is any object with ``stats.as_dict()`` (a
    :class:`~repro.core.rstknn.SearchResult`); the returned dict is what
    two engines claiming decision parity must agree on.
    """
    return {
        key: value
        for key, value in result.stats.as_dict().items()
        if key not in TIMING_KEYS
    }


def ids_gate(
    reference: Sequence[Sequence[int]],
    got: Sequence[Sequence[int]],
    label: str,
) -> None:
    """Exit non-zero unless every id list matches the reference exactly."""
    mismatches = [
        f"query {i}: {list(a)} != {list(b)}"
        for i, (a, b) in enumerate(zip(reference, got))
        if list(a) != list(b)
    ]
    if mismatches:
        raise SystemExit(
            f"parity FAILED ({label}):\n  " + "\n  ".join(mismatches)
        )


def results_gate(
    reference: Sequence,
    candidate: Sequence,
    label: str,
    check_decisions: bool = True,
) -> None:
    """Exit non-zero on any per-query id (and optionally decision-counter)
    divergence between two sequences of ``SearchResult``-shaped objects."""
    mismatches: List[str] = []
    for i, (a, b) in enumerate(zip(reference, candidate)):
        if a.ids != b.ids:
            mismatches.append(f"query {i}: ids {a.ids} != {b.ids}")
        elif check_decisions and decisions(a) != decisions(b):
            mismatches.append(
                f"query {i}: decisions {decisions(a)} != {decisions(b)}"
            )
    if mismatches:
        raise SystemExit(
            f"parity FAILED ({label}):\n  " + "\n  ".join(mismatches)
        )


def median_qps(
    run_round: Callable[[], float], n_queries: int, rounds: int
) -> float:
    """Median queries/sec over ``rounds`` timed executions of a workload.

    ``run_round`` executes the whole workload once and returns its wall
    time in seconds; the median (not mean) absorbs one-off scheduler
    noise without hiding consistent slowness.
    """
    rates = sorted(n_queries / run_round() for _ in range(rounds))
    return rates[rounds // 2]


def timed(fn: Callable[[], object]) -> Callable[[], float]:
    """Wrap a thunk into the ``run_round`` shape ``median_qps`` wants."""

    def run_round() -> float:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    return run_round


def report_header(
    n: int,
    quick: bool,
    timer=None,
    snapshot=None,
) -> Dict[str, object]:
    """The standard leading block of every ``BENCH_*.json`` report.

    Bundles :func:`~repro.bench.meta.bench_metadata` with the workload
    size, quick flag, and the kernel-backend facts every report
    repeats; pass the build/freeze ``timer``
    (:class:`~repro.obs.PhaseTimer`) and the frozen ``snapshot`` to
    include their standard sections too.  Callers ``update`` their
    specific sections on top.
    """
    header: Dict[str, object] = {
        "meta": bench_metadata(),
        "n": n,
        "quick": quick,
        "kernel_backend": kernels.backend_name(),
        "numpy_available": kernels.numpy_available(),
        "numpy_kernels_active": kernels.numpy_available()
        and kernels.backend_name() != "python",
    }
    if timer is not None:
        header["phases"] = timer.as_dict()
    if snapshot is not None:
        header["snapshot"] = snapshot.describe()
    return header


def latency_ms_of(samples_seconds: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank latency percentiles of raw samples, in milliseconds."""
    from ..obs import latency_percentiles  # noqa: PLC0415 — keep obs lazy

    return {
        point: seconds * 1000.0
        for point, seconds in latency_percentiles(samples_seconds).items()
    }


__all__ = [
    "TIMING_KEYS",
    "decisions",
    "ids_gate",
    "results_gate",
    "median_qps",
    "timed",
    "report_header",
    "latency_ms_of",
]
