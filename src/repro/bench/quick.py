"""The quick suite: a one-page health/performance summary.

``repro-rstknn bench`` runs a compact standard workload — every index
variant on one dataset, a handful of queries, parity-checked — and
prints a single table plus environment facts.  Meant for "did my change
regress anything?" loops and for readers who want one number per method
without running the full E1–E16 sweep.
"""

from __future__ import annotations

import platform
import time
from typing import List, Optional, Tuple

from ..core.baseline import ThresholdBaseline
from ..core.rstknn import RSTkNNSearcher
from ..workloads import gn_like, sample_queries
from .harness import METHODS, build_tree

Table = Tuple[List[str], List[List[str]]]


def run_quick_suite(
    n: int = 400,
    k: int = 5,
    num_queries: int = 3,
    include_base: bool = True,
    seed: int = 42,
) -> Table:
    """Build every method on one dataset and measure the same workload.

    Returns ``(headers, rows)``; raises ``AssertionError`` when any two
    methods disagree on any query's result set.
    """
    dataset = gn_like(n=n, seed=seed)
    queries = sample_queries(dataset, num_queries)
    headers = ["method", "build s", "pages", "ms/query", "I/O reads", "|result|"]
    rows: List[List[str]] = []
    reference: Optional[List[List[int]]] = None

    methods = [m for m in METHODS if include_base or m != "base"]
    for method in methods:
        tree = build_tree(dataset, method)
        stats = tree.stats()
        results: List[List[int]] = []
        total_ms = 0.0
        total_reads = 0
        for query in queries:
            tree.reset_io(cold=True)
            started = time.perf_counter()
            if method == "base":
                ids = ThresholdBaseline(tree).search(query, k)
            else:
                ids = RSTkNNSearcher(tree).search(query, k).ids
            total_ms += (time.perf_counter() - started) * 1000.0
            total_reads += tree.io.reads
            results.append(ids)
        if reference is None:
            reference = results
        elif results != reference:
            raise AssertionError(f"{method} disagrees with {methods[0]}")
        mean_result = sum(len(ids) for ids in results) / len(results)
        rows.append(
            [
                method,
                f"{stats.build_seconds:.3f}",
                str(stats.pages),
                f"{total_ms / len(queries):.1f}",
                f"{total_reads / len(queries):.1f}",
                f"{mean_result:.1f}",
            ]
        )
    return headers, rows


def environment_summary() -> List[str]:
    """Lines describing the machine, for benchmark context."""
    return [
        f"python {platform.python_version()} ({platform.python_implementation()})",
        f"platform {platform.system()} {platform.machine()}",
    ]
