"""Experiment harness shared by the CLI and the pytest benchmarks.

A *method* is one of the compared systems:

====================  ====================================================
``base``              Threshold baseline: per-object top-k over an IUR-tree
``iur``               Branch-and-bound RSTkNN over the plain IUR-tree
``ciur``              ... over the clustered CIUR-tree
``ciur-oe``           CIUR-tree with outlier extraction
``ciur-te``           CIUR-tree with entropy-guided traversal
``ciur-oe-te``        Both optimizations
====================  ====================================================

Every run reports cold-cache simulated I/O and wall time per query, plus
the searcher's decision statistics, averaged over the query workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import IndexConfig
from ..core.baseline import ThresholdBaseline
from ..core.rstknn import RSTkNNSearcher
from ..errors import ConfigError, QueueFull
from ..index.ciurtree import CIURTree
from ..index.iurtree import IURTree
from ..model.dataset import STDataset
from ..model.objects import STObject
from ..perf.cache import BoundCache

METHODS = ("base", "iur", "ciur", "ciur-oe", "ciur-te", "ciur-oe-te")

#: Default cohesion threshold for OE variants.  Calibrated so only the
#: genuinely cluster-breaking tail (~5-10% of documents on the bundled
#: workloads) is extracted; see E10 for the threshold sweep.
DEFAULT_OE_THRESHOLD = 0.08


@dataclass
class QueryRun:
    """Aggregated outcome of a query workload against one method."""

    method: str
    queries: int
    mean_ms: float
    mean_reads: float
    mean_result_size: float
    mean_expansions: float = 0.0
    mean_verified: float = 0.0
    group_decided_fraction: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> List[str]:
        """Cells for the standard experiment table (see HEADERS)."""
        return [
            self.method,
            f"{self.mean_ms:.2f}",
            f"{self.mean_reads:.1f}",
            f"{self.mean_result_size:.1f}",
            f"{self.mean_expansions:.1f}",
            f"{self.mean_verified:.1f}",
            f"{100 * self.group_decided_fraction:.1f}%",
        ]

    HEADERS = [
        "method",
        "ms/query",
        "I/O reads",
        "|result|",
        "expansions",
        "verified",
        "group-decided",
    ]


def build_tree(
    dataset: STDataset,
    method: str,
    index_config: Optional[IndexConfig] = None,
    seed: int = 7,
) -> IURTree:
    """Build the index a method runs on (``base`` uses a plain IUR-tree)."""
    cfg = index_config if index_config is not None else IndexConfig()
    if method in ("base", "iur"):
        plain = IndexConfig(
            max_entries=cfg.max_entries,
            min_entries=cfg.min_entries,
            page_size=cfg.page_size,
            buffer_pages=cfg.buffer_pages,
            num_clusters=1,
            outlier_threshold=None,
            use_entropy_priority=False,
        )
        return IURTree.build(dataset, plain)
    if method not in METHODS:
        raise ConfigError(f"unknown method {method!r}; expected one of {METHODS}")
    outlier_threshold = None
    if "oe" in method:
        outlier_threshold = (
            cfg.outlier_threshold
            if cfg.outlier_threshold is not None
            else DEFAULT_OE_THRESHOLD
        )
    clustered = IndexConfig(
        max_entries=cfg.max_entries,
        min_entries=cfg.min_entries,
        page_size=cfg.page_size,
        buffer_pages=cfg.buffer_pages,
        num_clusters=cfg.num_clusters,
        outlier_threshold=outlier_threshold,
        use_entropy_priority="te" in method,
    )
    return CIURTree.build(dataset, clustered, seed=seed)


def make_searcher(
    tree: IURTree,
    bound_cache: Optional[BoundCache] = None,
    engine: Optional[str] = None,
) -> RSTkNNSearcher:
    """Searcher wired to the tree's own configuration."""
    return RSTkNNSearcher(tree, bound_cache=bound_cache, engine=engine)


def run_queries(
    tree: IURTree,
    queries: Sequence[STObject],
    k: int,
    method: str = "iur",
    cold: bool = True,
    bound_cache: Optional[BoundCache] = None,
    engine: Optional[str] = None,
) -> QueryRun:
    """Run the branch-and-bound searcher over a workload and aggregate.

    Passing a ``bound_cache`` shares tree-pair bounds across the whole
    workload (and across calls, if the same cache is reused); the run's
    cache counters land in :attr:`QueryRun.extra`.  ``engine`` selects
    the traversal implementation (see
    :data:`repro.core.rstknn.ENGINE_CHOICES`).
    """
    searcher = make_searcher(tree, bound_cache=bound_cache, engine=engine)
    total_ms = 0.0
    total_reads = 0
    total_results = 0
    total_expansions = 0
    total_verified = 0
    total_group = 0
    total_hits = 0
    total_misses = 0
    n_objects = max(len(tree.dataset), 1)
    for query in queries:
        tree.reset_io(cold=cold)
        started = time.perf_counter()
        result = searcher.search(query, k)
        total_ms += (time.perf_counter() - started) * 1000.0
        total_reads += tree.io.reads
        total_results += len(result.ids)
        total_expansions += result.stats.expansions
        total_verified += result.stats.verified_objects
        total_group += result.stats.group_decided_objects()
        total_hits += result.stats.cache_hits
        total_misses += result.stats.cache_misses
    n = max(len(queries), 1)
    extra: Dict[str, float] = {
        "cache_hits": float(total_hits),
        "cache_misses": float(total_misses),
    }
    if bound_cache is not None:
        for key, value in bound_cache.stats().as_dict().items():
            extra[f"shared_{key}"] = float(value)
    return QueryRun(
        method=method,
        queries=len(queries),
        mean_ms=total_ms / n,
        mean_reads=total_reads / n,
        mean_result_size=total_results / n,
        mean_expansions=total_expansions / n,
        mean_verified=total_verified / n,
        group_decided_fraction=total_group / (n * n_objects),
        extra=extra,
    )


def run_batch_queries(
    tree: IURTree,
    queries: Sequence[STObject],
    k: int,
    method: str = "iur",
    workers: int = 1,
    cache_entries: Optional[int] = None,
    engine: Optional[str] = None,
    mode: str = "per-query",
    group_size: int = 8,
    metrics=None,
) -> QueryRun:
    """Run a workload through :class:`repro.perf.BatchSearcher`.

    Unlike :func:`run_queries` this measures *throughput* (warm buffer
    pool, shared bound cache, optional process fan-out, or the fused
    group engine with ``mode="fused"``), so I/O and per-query decision
    statistics are not reported.  The per-phase timing breakdown
    (``phase_*_seconds``) lands in :attr:`QueryRun.extra`; pass a
    :class:`repro.obs.MetricsRegistry` as ``metrics`` to additionally
    record counters, latency histograms, and phase/cache gauges for
    export (see ``docs/OBSERVABILITY.md``).
    """
    from ..perf import BatchSearcher
    from ..perf.cache import DEFAULT_BOUND_CACHE_ENTRIES

    searcher = BatchSearcher(
        tree,
        workers=workers,
        cache_entries=(
            cache_entries
            if cache_entries is not None
            else DEFAULT_BOUND_CACHE_ENTRIES
        ),
        engine=engine,
        mode=mode,
        group_size=group_size,
        metrics=metrics,
    )
    batch = searcher.run(queries, k)
    stats = batch.stats
    n = max(stats.queries, 1)
    return QueryRun(
        method=f"{method}-batch"
        + (f"-w{workers}" if workers > 1 else "")
        + (f"-fused{group_size}" if mode == "fused" else ""),
        queries=stats.queries,
        mean_ms=stats.mean_ms,
        mean_reads=0.0,
        mean_result_size=stats.total_result_ids / n,
        extra=stats.as_dict(),
    )


def run_service_queries(
    tree: IURTree,
    queries: Sequence[STObject],
    k: int,
    method: str = "iur",
    deadline_seconds: Optional[float] = None,
    max_pending: int = 1024,
    metrics=None,
) -> QueryRun:
    """Run a workload through :class:`repro.service.QueryService`.

    The reliability counterpart of :func:`run_batch_queries`: every
    query goes through the bounded admission queue, the per-query
    deadline, and the ``fused -> snapshot -> seed`` degradation chain
    (see ``docs/RELIABILITY.md``).  Degradations, deadline expiries,
    and sheds land in :attr:`QueryRun.extra` — and in ``metrics`` under
    the ``service.*`` names when a registry is passed.  Queries lost to
    deadlines or chain exhaustion are skipped, not raised, so the run
    reports the surviving throughput.
    """
    from ..service import QueryService

    service = QueryService(
        tree,
        deadline_seconds=deadline_seconds,
        max_pending=max_pending,
        metrics=metrics,
    )
    queries = list(queries)
    started = time.perf_counter()
    shed = 0
    for query in queries:
        try:
            service.submit(query, k)
        except QueueFull:
            shed += 1
    batch = service.drain()
    elapsed = time.perf_counter() - started
    served = len(batch.results)
    failed = len(queries) - shed - served
    extra: Dict[str, float] = {
        "served": served,
        "shed": shed,
        "failed": failed,
        "degraded": batch.degraded_count,
    }
    if deadline_seconds is not None:
        extra["deadline_seconds"] = deadline_seconds
    return QueryRun(
        method=f"{method}-service",
        queries=len(queries),
        mean_ms=(elapsed * 1000.0 / served) if served else 0.0,
        mean_reads=0.0,
        mean_result_size=(
            sum(len(r.ids) for r in batch.results) / served if served else 0.0
        ),
        extra=extra,
    )


def run_baseline_queries(
    tree: IURTree,
    queries: Sequence[STObject],
    k: int,
    cold: bool = True,
) -> QueryRun:
    """Run the per-object top-k threshold baseline over a workload."""
    baseline = ThresholdBaseline(tree)
    total_ms = 0.0
    total_reads = 0
    total_results = 0
    for query in queries:
        tree.reset_io(cold=cold)
        started = time.perf_counter()
        ids = baseline.search(query, k)
        total_ms += (time.perf_counter() - started) * 1000.0
        total_reads += tree.io.reads
        total_results += len(ids)
    n = max(len(queries), 1)
    return QueryRun(
        method="base",
        queries=len(queries),
        mean_ms=total_ms / n,
        mean_reads=total_reads / n,
        mean_result_size=total_results / n,
    )
