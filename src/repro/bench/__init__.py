"""Benchmark harness: method registry, runners, and table reporting."""

from .harness import (
    METHODS,
    QueryRun,
    build_tree,
    make_searcher,
    run_baseline_queries,
    run_queries,
)
from .report import format_table

__all__ = [
    "METHODS",
    "QueryRun",
    "build_tree",
    "make_searcher",
    "run_baseline_queries",
    "run_queries",
    "format_table",
]
