"""Benchmark harness: method registry, runners, and table reporting."""

from .gates import (
    TIMING_KEYS,
    decisions,
    ids_gate,
    latency_ms_of,
    median_qps,
    report_header,
    results_gate,
    timed,
)
from .harness import (
    METHODS,
    QueryRun,
    build_tree,
    make_searcher,
    run_baseline_queries,
    run_queries,
)
from .report import format_table

__all__ = [
    "METHODS",
    "QueryRun",
    "TIMING_KEYS",
    "build_tree",
    "decisions",
    "ids_gate",
    "latency_ms_of",
    "make_searcher",
    "median_qps",
    "report_header",
    "results_gate",
    "run_baseline_queries",
    "run_queries",
    "timed",
    "format_table",
]
