"""Experiment result persistence: append-only JSONL run logs.

Every CLI experiment run can be journaled to a JSON-lines file — one
record per run with the experiment id, the parameters, the table, and a
wall-clock stamp supplied by the caller — so sweeps can be accumulated
across sessions and re-rendered or diffed later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..errors import ConfigError

PathLike = Union[str, Path]


class ResultLog:
    """Append-only journal of experiment tables."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def append(
        self,
        experiment: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[str]],
        params: Optional[Dict[str, object]] = None,
        stamp: Optional[str] = None,
    ) -> None:
        """Append one run record."""
        record = {
            "experiment": experiment,
            "headers": list(headers),
            "rows": [list(map(str, row)) for row in rows],
            "params": dict(params or {}),
            "stamp": stamp,
        }
        with self.path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")

    def records(self) -> Iterator[Dict[str, object]]:
        """Yield every stored record (oldest first)."""
        if not self.path.exists():
            return
        with self.path.open() as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ConfigError(
                        f"corrupt result log {self.path} at line {line_no}: {exc}"
                    ) from exc

    def latest(self, experiment: str) -> Optional[Dict[str, object]]:
        """The most recent record for one experiment id, if any."""
        found: Optional[Dict[str, object]] = None
        for record in self.records():
            if record.get("experiment") == experiment:
                found = record
        return found

    def experiments(self) -> List[str]:
        """Distinct experiment ids present in the log, sorted."""
        return sorted({str(r.get("experiment")) for r in self.records()})

    def render(self, experiment: str) -> str:
        """Re-render the latest table for an experiment."""
        from .report import format_table

        record = self.latest(experiment)
        if record is None:
            raise ConfigError(f"no stored runs for {experiment} in {self.path}")
        return format_table(
            record["headers"], record["rows"], title=f"{experiment} (stored)"
        )
