"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned ASCII table (monospace, experiment logs)."""
    cols = len(headers)
    norm_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in norm_rows:
        if len(row) != cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {cols}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in norm_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in norm_rows)
    return "\n".join(lines)
