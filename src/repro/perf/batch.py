"""Batch query engine: run a workload of RSTkNN queries over one index.

Query *streams* are where the shared-cache and kernel work pays off:

* **Sequential mode** (``workers=1``) runs every query through one
  :class:`~repro.core.rstknn.RSTkNNSearcher` wired to a shared
  :class:`~repro.perf.cache.BoundCache`, so tree-pair bounds computed by
  early queries are hits for later ones (the per-query caches of the
  seed recomputed them every time).
* **Parallel mode** (``workers > 1``) fans the workload out over a
  ``concurrent.futures.ProcessPoolExecutor``.  Each worker receives a
  pickled copy of the index once (at pool start) and keeps its own
  searcher + bound cache for the queries routed to it, so no state is
  shared and results are bit-identical to sequential runs.  When the
  tree cannot be pickled the engine falls back to sequential execution
  rather than failing the workload (``BatchStats.fallback_reason``
  records why, and a :class:`RuntimeWarning` is emitted).
* **Fused mode** (``mode="fused"``) groups the workload by spatial
  locality (Morton order, ``group_size`` queries per group) and walks
  the index snapshot once per group through
  :class:`repro.core.fused.FusedBatchEngine`, amortizing node-level
  bound work across the group.  Results are bit-identical to the
  per-query ``snapshot`` engine by construction.

Results come back in query order regardless of mode, with aggregate
throughput and cache statistics in :class:`BatchStats`.
"""

from __future__ import annotations

import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import BATCH_MODES, PerfConfig, SimilarityConfig
from ..core.rstknn import RSTkNNSearcher, SearchResult
from ..errors import QueryError
from ..index.iurtree import IURTree
from ..model.objects import STObject
from ..obs.metrics import MetricsRegistry, record_search
from ..obs.timers import PhaseTimer
from ..service.faults import maybe_fail_worker
from ..service.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .cache import DEFAULT_BOUND_CACHE_ENTRIES, BoundCache

#: Per-process worker state: the unpickled index and its searcher.
_WORKER: Dict[str, RSTkNNSearcher] = {}

#: Metric counted once per re-enqueued chunk (see ``docs/RELIABILITY.md``).
RETRIES_COUNTER = "service.retries"


def _init_worker(payload: bytes) -> None:
    """Pool initializer: build this worker's private index handle."""
    tree, config, te_weight, cache_entries, engine = pickle.loads(payload)
    _WORKER["searcher"] = RSTkNNSearcher(
        tree,
        config,
        te_weight=te_weight,
        bound_cache=BoundCache(cache_entries),
        engine=engine,
    )


def _run_chunk(
    chunk: Sequence[Tuple[int, STObject, int, int]],
) -> List[Tuple[int, SearchResult]]:
    """Execute one chunk of ``(index, query, k, attempt)`` tasks.

    ``attempt`` exists for :mod:`repro.service.faults`: armed worker
    faults fire only on first attempts, so a retried chunk runs clean
    and the batch result is byte-identical to a fault-free run.
    """
    searcher = _WORKER["searcher"]
    out: List[Tuple[int, SearchResult]] = []
    for i, query, k, attempt in chunk:
        maybe_fail_worker(i, attempt)
        out.append((i, searcher.search(query, k)))
    return out


@dataclass
class BatchStats:
    """Aggregate outcome of one batch run."""

    queries: int
    k: int
    workers: int
    elapsed_seconds: float
    queries_per_second: float
    mean_ms: float
    total_result_ids: int
    cache: Dict[str, float] = field(default_factory=dict)
    #: Execution mode that actually ran (one of ``BATCH_MODES``).
    mode: str = "per-query"
    #: Queries per fused group (``None`` outside fused mode).
    group_size: Optional[int] = None
    #: Number of fused groups executed (``None`` outside fused mode).
    groups: Optional[int] = None
    #: Why a requested execution strategy was downgraded (``None`` when
    #: the run executed as requested) — e.g. parallel mode degrading to
    #: sequential because the index could not be pickled.
    fallback_reason: Optional[str] = None
    #: Query chunks re-enqueued after transient worker failures
    #: (crashed or erroring pool workers); 0 on clean runs.
    retries: int = 0
    #: Per-phase wall-clock breakdown (seconds): ``walk`` always; fused
    #: runs add ``freeze`` (snapshot + engine setup) and ``group``
    #: (locality ordering).  Schema documented in ``docs/TUNING.md``.
    phases: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat dict of the counters, for experiment logging."""
        out: Dict[str, float] = {
            "queries": self.queries,
            "k": self.k,
            "workers": self.workers,
            "mode": self.mode,
            "elapsed_seconds": self.elapsed_seconds,
            "queries_per_second": self.queries_per_second,
            "mean_ms": self.mean_ms,
            "total_result_ids": self.total_result_ids,
        }
        if self.group_size is not None:
            out["group_size"] = self.group_size
        if self.groups is not None:
            out["groups"] = self.groups
        if self.fallback_reason is not None:
            out["fallback_reason"] = self.fallback_reason
        if self.retries:
            out["retries"] = self.retries
        for key, value in self.cache.items():
            out[f"cache_{key}"] = value
        for name, seconds in self.phases.items():
            out[f"phase_{name}_seconds"] = seconds
        return out


@dataclass
class BatchResult:
    """Per-query results (in input order) plus aggregate statistics."""

    results: List[SearchResult]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def id_lists(self) -> List[List[int]]:
        """The sorted result-id list of every query, in input order."""
        return [r.ids for r in self.results]


class BatchSearcher:
    """Runs query workloads over one (C)IUR-tree, amortizing shared work.

    One instance owns a long-lived searcher with a shared
    :class:`~repro.perf.cache.BoundCache`; call :meth:`run` as many
    times as needed — the cache keeps warming across runs.  Clear it
    with :meth:`invalidate` after index updates.
    """

    def __init__(
        self,
        tree: IURTree,
        config: Optional[SimilarityConfig] = None,
        workers: int = 1,
        cache_entries: int = DEFAULT_BOUND_CACHE_ENTRIES,
        te_weight: float = 0.05,
        warm: bool = True,
        engine: Optional[str] = None,
        mode: str = "per-query",
        group_size: int = 8,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """``workers=1`` runs sequentially with the shared bound cache;
        ``workers>1`` fans out over that many processes, each holding its
        own index handle.  ``warm=True`` pre-freezes the tree's kernel
        forms so the first query does not pay freezing costs.  ``engine``
        picks the traversal implementation per query (see
        :data:`repro.core.rstknn.ENGINE_CHOICES`); note that under
        ``auto`` the attached bound cache selects the seed walk — pass
        ``engine="snapshot"`` explicitly to batch over the columnar
        engine (whose snapshot-resident memo replaces the bound cache).
        ``mode="fused"`` runs the workload through the fused group
        engine instead of one query at a time: spatial-locality groups
        of ``group_size`` queries share one snapshot walk (sequential
        only — fused mode is incompatible with ``workers>1`` and with
        ``engine="seed"``, since it is by construction a batch form of
        the snapshot engine).  ``metrics`` attaches a
        :class:`repro.obs.MetricsRegistry`: each run then records
        per-query counters/latencies, phase-timer gauges, and bound
        cache gauges (``None`` records nothing).  ``retry_policy``
        governs how parallel mode re-enqueues the query chunks a
        crashed or erroring pool worker lost (``None`` uses
        :data:`repro.service.retry.DEFAULT_RETRY_POLICY`); an exhausted
        budget runs the surviving chunks sequentially in the parent, so
        a batch always completes."""
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if mode not in BATCH_MODES:
            raise QueryError(
                f"unknown batch mode {mode!r}; expected one of {BATCH_MODES}"
            )
        if mode == "fused":
            if workers > 1:
                raise QueryError(
                    "fused batch mode is sequential; it is incompatible "
                    f"with workers={workers}"
                )
            if engine == "seed":
                raise QueryError(
                    "fused batch mode runs over the index snapshot; it is "
                    "incompatible with engine='seed'"
                )
            if group_size < 1:
                raise QueryError(
                    f"group_size must be >= 1, got {group_size}"
                )
        self.tree = tree
        self.config = config
        self.workers = workers
        self.cache_entries = cache_entries
        self.te_weight = te_weight
        self.engine = engine
        self.mode = mode
        self.group_size = group_size
        self.metrics = metrics
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        self.bound_cache = BoundCache(cache_entries)
        self._pickle_error: Optional[str] = None
        self._last_retries = 0
        self._retry_note: Optional[str] = None
        self._searcher = RSTkNNSearcher(
            tree,
            config,
            te_weight=te_weight,
            bound_cache=self.bound_cache,
            engine=engine,
        )
        if warm:
            tree.warm_kernels()

    @classmethod
    def from_perf_config(
        cls,
        tree: IURTree,
        perf: PerfConfig,
        config: Optional[SimilarityConfig] = None,
        te_weight: float = 0.05,
        warm: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "BatchSearcher":
        """Build a batch searcher from a :class:`~repro.config.PerfConfig`.

        Applies the bundle's engine, worker, cache-size, and batch-mode
        knobs; when ``perf.observability`` is true and no ``metrics``
        registry is passed, a live
        :class:`~repro.obs.metrics.MetricsRegistry` is created and
        exposed as ``searcher.metrics`` for export after the run.
        ``perf.kernel_backend`` is process-wide state — apply it
        separately with :func:`repro.perf.set_backend`.
        """
        if metrics is None and perf.observability:
            metrics = MetricsRegistry()
        return cls(
            tree,
            config,
            workers=perf.batch_workers,
            cache_entries=perf.bound_cache_entries,
            te_weight=te_weight,
            warm=warm,
            engine=perf.engine,
            mode=perf.batch_mode,
            group_size=perf.fused_group_size,
            metrics=metrics,
            retry_policy=RetryPolicy(
                max_attempts=perf.retry_attempts,
                base_delay=perf.retry_base_delay,
            ),
        )

    def invalidate(self) -> None:
        """Drop shared bounds (call after inserting/deleting objects)."""
        self.bound_cache.clear()

    def run(self, queries: Sequence[STObject], k: int) -> BatchResult:
        """Execute the workload; results align with ``queries`` order."""
        queries = list(queries)
        started = time.perf_counter()
        timer = PhaseTimer()
        workers_used = self.workers
        fallback_reason: Optional[str] = None
        groups: Optional[int] = None
        self._last_retries = 0
        self._retry_note = None
        if self.mode == "fused" and queries:
            workers_used = 1
            results, groups = self._run_fused(queries, k, timer)
        elif self.workers > 1 and len(queries) > 1:
            with timer.phase("walk"):
                results = self._run_parallel(queries, k)
            if results is None:  # unpicklable index — degrade gracefully
                workers_used = 1
                fallback_reason = (
                    self._pickle_error or "index not picklable"
                )
                self._count_fallback("unpicklable")
                warnings.warn(
                    "BatchSearcher parallel mode fell back to sequential "
                    f"execution: {fallback_reason}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                with timer.phase("walk"):
                    results = self._run_sequential(queries, k)
            elif self._retry_note is not None:
                # Retries ran out for some chunks; they completed
                # sequentially in the parent (see _run_parallel).
                fallback_reason = self._retry_note
                self._count_fallback("retry_exhausted")
                warnings.warn(
                    "BatchSearcher parallel mode exhausted its retry "
                    f"budget: {fallback_reason}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        else:
            workers_used = 1
            with timer.phase("walk"):
                results = self._run_sequential(queries, k)
        elapsed = time.perf_counter() - started
        n = len(queries)
        fused = self.mode == "fused"
        stats = BatchStats(
            queries=n,
            k=k,
            workers=workers_used,
            elapsed_seconds=elapsed,
            queries_per_second=(n / elapsed) if elapsed > 0 else 0.0,
            mean_ms=(elapsed * 1000.0 / n) if n else 0.0,
            total_result_ids=sum(len(r.ids) for r in results),
            cache=self.bound_cache.stats().as_dict()
            if workers_used == 1 and not fused
            else {},
            mode=self.mode,
            group_size=self.group_size if fused else None,
            groups=groups,
            fallback_reason=fallback_reason,
            retries=self._last_retries,
            phases=timer.as_dict(),
        )
        self._record_run(results, timer, fused, workers_used)
        return BatchResult(results=results, stats=stats)

    def _record_run(
        self,
        results: List[SearchResult],
        timer: PhaseTimer,
        fused: bool,
        workers_used: int,
    ) -> None:
        """Mirror one run's outcome into the attached metrics registry."""
        metrics = self.metrics
        if metrics is None or not metrics.enabled:
            return
        if fused:
            engine_label = "fused"
        else:
            engine_label = self._searcher._resolve_engine(None)
        for result in results:
            record_search(metrics, engine_label, result.stats)
        timer.publish(metrics)
        if workers_used == 1 and not fused:
            self.bound_cache.publish(metrics)

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------

    def _run_sequential(
        self, queries: Sequence[STObject], k: int
    ) -> List[SearchResult]:
        return [self._searcher.search(query, k) for query in queries]

    def _run_fused(
        self, queries: Sequence[STObject], k: int, timer: PhaseTimer
    ) -> Tuple[List[SearchResult], int]:
        """Run locality groups through the fused engine; input order."""
        from ..core.fused import make_groups

        searcher = self._searcher
        with timer.phase("freeze"):
            snap = self.tree.snapshot()
            engine = snap.fused_engine_for(
                self.tree, searcher.measure, searcher.alpha, searcher.te_weight
            )
        results: List[Optional[SearchResult]] = [None] * len(queries)
        with timer.phase("group"):
            groups = make_groups(queries, self.group_size)
        with timer.phase("walk"):
            for member_ids in groups:
                group = [queries[i] for i in member_ids]
                for i, result in zip(member_ids, engine.run_group(group, k)):
                    results[i] = result
        return [r for r in results if r is not None], len(groups)

    def _count_fallback(self, reason: str) -> None:
        """Publish a ``batch.fallback.<reason>`` counter increment."""
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.counter(f"batch.fallback.{reason}").inc()

    def _run_parallel(
        self, queries: Sequence[STObject], k: int
    ) -> Optional[List[SearchResult]]:
        """Fan the workload out over a process pool, retrying failures.

        The workload is cut into index-contiguous chunks (one future
        each).  A chunk whose worker raises — or whose worker process
        dies, breaking the whole pool — is re-enqueued with a bumped
        attempt number under :attr:`retry_policy` (backoff + jitter,
        one ``service.retries`` tick per re-enqueue); chunks that
        already completed keep their results, and a broken pool is
        rebuilt before the retry round.  A chunk that exhausts its
        attempts runs sequentially in the parent, so the batch always
        completes with results byte-identical to a clean run.
        """
        try:
            payload = pickle.dumps(
                (
                    self.tree,
                    self.config,
                    self.te_weight,
                    self.cache_entries,
                    self.engine,
                )
            )
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            self._pickle_error = (
                f"index not picklable ({type(exc).__name__}: {exc})"
            )
            return None
        n = len(queries)
        workers = min(self.workers, n)
        results: List[Optional[SearchResult]] = [None] * n
        # Chunking keeps per-task IPC overhead low while still spreading
        # the workload; each worker's bound cache warms on its own chunk.
        chunksize = max(1, n // (workers * 4))
        pending: List[Tuple[List[Tuple[int, STObject, int, int]], int]] = [
            (
                [(i, queries[i], k, 0) for i in range(lo, min(lo + chunksize, n))],
                0,
            )
            for lo in range(0, n, chunksize)
        ]
        policy = self.retry_policy
        exhausted: List[List[Tuple[int, STObject, int, int]]] = []
        retries = 0

        def new_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(payload,),
            )

        pool = new_pool()
        try:
            while pending:
                round_chunks, pending = pending, []
                futures = [
                    (pool.submit(_run_chunk, chunk), chunk, attempt)
                    for chunk, attempt in round_chunks
                ]
                broken = False
                failed: List[Tuple[List[Tuple[int, STObject, int, int]], int]] = []
                for future, chunk, attempt in futures:
                    try:
                        for i, result in future.result():
                            results[i] = result
                    except BrokenProcessPool:
                        broken = True
                        failed.append((chunk, attempt))
                    except Exception:  # worker-side error; pool survives
                        failed.append((chunk, attempt))
                if broken:
                    pool.shutdown(wait=False)
                    pool = new_pool()
                for chunk, attempt in failed:
                    next_attempt = attempt + 1
                    retried = [
                        (i, query, k_, next_attempt) for i, query, k_, _ in chunk
                    ]
                    if next_attempt >= policy.max_attempts:
                        exhausted.append(retried)
                        continue
                    retries += 1
                    delay = policy.delay(next_attempt, salt=chunk[0][0])
                    if delay > 0.0:
                        time.sleep(delay)
                    pending.append((retried, next_attempt))
        finally:
            pool.shutdown()
        if exhausted:
            searcher = self._searcher
            for chunk in exhausted:
                for i, query, k_, _ in chunk:
                    results[i] = searcher.search(query, k_)
            self._retry_note = (
                f"retry budget exhausted ({policy.max_attempts} attempts); "
                f"{sum(len(c) for c in exhausted)} queries ran sequentially"
            )
        self._last_retries = retries
        if retries and self.metrics is not None and self.metrics.enabled:
            self.metrics.counter(RETRIES_COUNTER).inc(retries)
        return [r for r in results if r is not None]
