"""Batch query engine: run a workload of RSTkNN queries over one index.

Query *streams* are where the shared-cache and kernel work pays off:

* **Sequential mode** (``workers=1``) runs every query through one
  :class:`~repro.core.rstknn.RSTkNNSearcher` wired to a shared
  :class:`~repro.perf.cache.BoundCache`, so tree-pair bounds computed by
  early queries are hits for later ones (the per-query caches of the
  seed recomputed them every time).
* **Parallel mode** (``workers > 1``) fans the workload out over a
  ``concurrent.futures.ProcessPoolExecutor``.  The index reaches the
  workers through one of two transports (``share=``): the default
  ``auto`` exports the frozen snapshot into a shared-memory segment
  (:mod:`repro.perf.shm`) that every worker maps zero-copy — the pool
  initializer ships only the segment *name* — and falls back to
  pickling the whole object graph when shared memory is unavailable
  (``BatchStats.fallback_reason`` records why, e.g.
  ``"shm_unavailable (numpy is not importable)"``).  Either way each
  worker keeps its own searcher for the queries routed to it, so no
  mutable state is shared and results are bit-identical to sequential
  runs.  When the tree cannot be pickled either, the engine falls back
  to sequential execution rather than failing the workload (reason
  recorded, and a :class:`RuntimeWarning` is emitted once per
  searcher).
* **Fused mode** (``mode="fused"``) groups the workload by spatial
  locality (Morton order, ``group_size`` queries per group) and walks
  the index snapshot once per group through
  :class:`repro.core.fused.FusedBatchEngine`, amortizing node-level
  bound work across the group.  Results are bit-identical to the
  per-query ``snapshot`` engine by construction.

Results come back in query order regardless of mode, with aggregate
throughput and cache statistics in :class:`BatchStats`.
"""

from __future__ import annotations

import bisect
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import BATCH_MODES, BATCH_SHARE_MODES, PerfConfig, SimilarityConfig
from ..core.rstknn import RSTkNNSearcher, SearchResult
from ..errors import QueryError
from ..index.iurtree import IURTree
from ..model.objects import STObject
from ..obs.metrics import MetricsRegistry, latency_percentiles, record_search
from ..obs.timers import PhaseTimer
from ..service.faults import maybe_fail_worker
from ..service.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .cache import DEFAULT_BOUND_CACHE_ENTRIES, BoundCache

#: Per-process worker state: the index handle (unpickled tree or
#: shared-memory attachment) and the searcher built over it.
_WORKER: Dict[str, object] = {}

#: Metric counted once per re-enqueued chunk (see ``docs/RELIABILITY.md``).
RETRIES_COUNTER = "service.retries"

#: Bucket bounds of the ``engine.frontier.batch_size`` histogram —
#: nodes per batched frontier kernel call; the lookahead default is 4
#: and ``REPRO_FRONTIER_BATCH`` rarely exceeds a few dozen.
FRONTIER_HIST_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def _init_worker(payload: bytes) -> None:
    """Pool initializer: build this worker's private index handle.

    ``payload`` is a pickled, tagged tuple.  ``("pickle", ...)``
    carries the whole object graph; ``("shm", name, generation, ...)``
    carries only the name of a :mod:`repro.perf.shm` segment that this
    worker maps zero-copy (generation-checked, so a segment exported
    from a since-mutated index is refused rather than served).
    """
    spec = pickle.loads(payload)
    if spec[0] == "shm":
        (_tag, name, generation, config, te_weight,
         engine, warm_floors, approx_verify, approx_lsh) = spec
        from .shm import attach  # noqa: PLC0415 — worker-side only

        attached = attach(name, expected_generation=generation)
        _WORKER["attached"] = attached
        _WORKER["searcher"] = attached.searcher(
            config,
            te_weight=te_weight,
            engine=engine,
            warm_floors=warm_floors,
            approx_verify=approx_verify,
            approx_lsh=approx_lsh,
        )
    else:
        (_tag, tree, config, te_weight, cache_entries,
         engine, warm_floors, approx_verify, approx_lsh) = spec
        _WORKER["searcher"] = RSTkNNSearcher(
            tree,
            config,
            te_weight=te_weight,
            bound_cache=BoundCache(cache_entries),
            engine=engine,
            warm_floors=warm_floors,
            approx_verify=approx_verify,
            approx_lsh=approx_lsh,
        )


def _worker_rss_bytes() -> Optional[int]:
    """This process's peak RSS in bytes (``None`` where unsupported)."""
    try:
        import resource  # noqa: PLC0415 — unix-only stdlib module

        # ru_maxrss is KiB on Linux (bytes on macOS; close enough for a
        # relative shm-vs-pickle comparison, and benches run on Linux).
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return None


def _run_chunk(
    chunk: Sequence[Tuple[int, STObject, int, int]],
) -> Tuple[List[Tuple[int, SearchResult]], Optional[int]]:
    """Execute one chunk of ``(index, query, k, attempt)`` tasks.

    ``attempt`` exists for :mod:`repro.service.faults`: armed worker
    faults fire only on first attempts, so a retried chunk runs clean
    and the batch result is byte-identical to a fault-free run.
    Returns the results plus this worker's peak RSS, so the parent can
    report how much memory the fan-out actually cost per process.
    """
    searcher = _WORKER["searcher"]
    out: List[Tuple[int, SearchResult]] = []
    for i, query, k, attempt in chunk:
        maybe_fail_worker(i, attempt)
        out.append((i, searcher.search(query, k)))
    return out, _worker_rss_bytes()


@dataclass
class BatchStats:
    """Aggregate outcome of one batch run."""

    queries: int
    k: int
    workers: int
    elapsed_seconds: float
    queries_per_second: float
    mean_ms: float
    total_result_ids: int
    cache: Dict[str, float] = field(default_factory=dict)
    #: Execution mode that actually ran (one of ``BATCH_MODES``).
    mode: str = "per-query"
    #: Queries per fused group (``None`` outside fused mode).
    group_size: Optional[int] = None
    #: Number of fused groups executed (``None`` outside fused mode).
    groups: Optional[int] = None
    #: Why a requested execution strategy was downgraded (``None`` when
    #: the run executed as requested) — e.g. parallel mode shipping a
    #: pickled tree because shared memory was unavailable
    #: (``"shm_unavailable (...)"``), or degrading to sequential
    #: because the index could not be pickled.
    fallback_reason: Optional[str] = None
    #: Index transport parallel mode actually used (``"shm"`` or
    #: ``"pickle"``; ``None`` outside parallel runs).
    share: Optional[str] = None
    #: Peak RSS of the busiest pool worker, in bytes (``None`` outside
    #: parallel runs or where ``getrusage`` is unavailable).  Under the
    #: shm transport this stays near the query working set; under
    #: pickle it grows by a full private index copy per worker.
    worker_rss_bytes: Optional[int] = None
    #: Query chunks re-enqueued after transient worker failures
    #: (crashed or erroring pool workers); 0 on clean runs.
    retries: int = 0
    #: Per-phase wall-clock breakdown (seconds): ``walk`` always; fused
    #: runs add ``freeze`` (snapshot + engine setup) and ``group``
    #: (locality ordering).  Schema documented in ``docs/TUNING.md``.
    phases: Dict[str, float] = field(default_factory=dict)
    #: Per-query latency percentiles in milliseconds (``p50``/``p95``/
    #: ``p99``, nearest-rank over each query's own ``elapsed_seconds``)
    #: — the tail-latency companion to the throughput figures above.
    #: Fused runs report group-walk time per member query.
    latency_ms: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat dict of the counters, for experiment logging."""
        out: Dict[str, float] = {
            "queries": self.queries,
            "k": self.k,
            "workers": self.workers,
            "mode": self.mode,
            "elapsed_seconds": self.elapsed_seconds,
            "queries_per_second": self.queries_per_second,
            "mean_ms": self.mean_ms,
            "total_result_ids": self.total_result_ids,
        }
        if self.group_size is not None:
            out["group_size"] = self.group_size
        if self.groups is not None:
            out["groups"] = self.groups
        if self.fallback_reason is not None:
            out["fallback_reason"] = self.fallback_reason
        if self.share is not None:
            out["share"] = self.share
        if self.worker_rss_bytes is not None:
            out["worker_rss_bytes"] = self.worker_rss_bytes
        if self.retries:
            out["retries"] = self.retries
        for key, value in self.cache.items():
            out[f"cache_{key}"] = value
        for name, seconds in self.phases.items():
            out[f"phase_{name}_seconds"] = seconds
        for point, ms in self.latency_ms.items():
            out[f"latency_{point}_ms"] = ms
        return out


@dataclass
class BatchResult:
    """Per-query results (in input order) plus aggregate statistics."""

    results: List[SearchResult]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def id_lists(self) -> List[List[int]]:
        """The sorted result-id list of every query, in input order."""
        return [r.ids for r in self.results]


class BatchSearcher:
    """Runs query workloads over one (C)IUR-tree, amortizing shared work.

    One instance owns a long-lived searcher with a shared
    :class:`~repro.perf.cache.BoundCache`; call :meth:`run` as many
    times as needed — the cache keeps warming across runs.  Clear it
    with :meth:`invalidate` after index updates.
    """

    def __init__(
        self,
        tree: IURTree,
        config: Optional[SimilarityConfig] = None,
        workers: int = 1,
        cache_entries: int = DEFAULT_BOUND_CACHE_ENTRIES,
        te_weight: float = 0.05,
        warm: bool = True,
        engine: Optional[str] = None,
        mode: str = "per-query",
        group_size: int = 8,
        share: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        warm_floors: Optional[bool] = None,
        approx_verify: bool = True,
        sketch_kmax: Optional[int] = None,
        sketch_budget: Optional[int] = None,
        sketch_pool: Optional[int] = None,
        sketch_sample_frac: Optional[float] = None,
        approx_lsh: Optional[bool] = None,
    ) -> None:
        """``workers=1`` runs sequentially with the shared bound cache;
        ``workers>1`` fans out over that many processes, each holding its
        own index handle.  ``warm=True`` pre-freezes the tree's kernel
        forms so the first query does not pay freezing costs.  ``engine``
        picks the traversal implementation per query (see
        :data:`repro.core.rstknn.ENGINE_CHOICES`); note that under
        ``auto`` the attached bound cache selects the seed walk — pass
        ``engine="snapshot"`` explicitly to batch over the columnar
        engine (whose snapshot-resident memo replaces the bound cache).
        ``mode="fused"`` runs the workload through the fused group
        engine instead of one query at a time: spatial-locality groups
        of ``group_size`` queries share one snapshot walk (sequential
        only — fused mode is incompatible with ``workers>1`` and with
        ``engine="seed"``, since it is by construction a batch form of
        the snapshot engine).  ``share`` picks parallel mode's index
        transport (one of :data:`repro.config.BATCH_SHARE_MODES`):
        ``auto`` ships a zero-copy shared-memory snapshot segment when
        numpy and ``multiprocessing.shared_memory`` are present and the
        engine is not the seed walk, recording
        ``fallback_reason="shm_unavailable (...)"`` when it has to
        pickle instead; ``shm`` does the same but warns on fallback;
        ``pickle`` always ships the pickled object graph (workers under
        shm run the snapshot engine, which is bit-identical on results
        and decision counters by the engine parity contract).
        ``metrics`` attaches a
        :class:`repro.obs.MetricsRegistry`: each run then records
        per-query counters/latencies, phase-timer gauges, and bound
        cache gauges (``None`` records nothing).  ``retry_policy``
        governs how parallel mode re-enqueues the query chunks a
        crashed or erroring pool worker lost (``None`` uses
        :data:`repro.service.retry.DEFAULT_RETRY_POLICY`); an exhausted
        budget runs the surviving chunks sequentially in the parent, so
        a batch always completes.

        ``warm_floors`` arms the frozen kNNL floor sketch
        (:mod:`repro.approx`) on exact snapshot/fused walks — results
        stay bit-identical; ``None`` defers to ``REPRO_WARM_FLOORS``.
        ``approx_verify`` applies under ``engine="approx"``: ``True``
        verifies candidates exactly, ``False`` returns the raw
        conservative candidate set.  ``approx_lsh`` arms the approx
        engine's LSH pre-filter stage (``None`` defers to
        ``REPRO_APPROX_LSH``).  The ``sketch_*`` knobs — including
        ``sketch_sample_frac``, the true-kNN sampling budget of the
        curve fit — override the sketch build parameters for the
        sequential searcher and pickled workers (shm workers use the
        segment's exported sketch or the :mod:`repro.approx.sketch`
        defaults)."""
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if mode not in BATCH_MODES:
            raise QueryError(
                f"unknown batch mode {mode!r}; expected one of {BATCH_MODES}"
            )
        if share not in BATCH_SHARE_MODES:
            raise QueryError(
                f"unknown batch share mode {share!r}; "
                f"expected one of {BATCH_SHARE_MODES}"
            )
        if mode == "fused":
            if workers > 1:
                raise QueryError(
                    "fused batch mode is sequential; it is incompatible "
                    f"with workers={workers}"
                )
            if engine == "seed":
                raise QueryError(
                    "fused batch mode runs over the index snapshot; it is "
                    "incompatible with engine='seed'"
                )
            if engine == "approx":
                raise QueryError(
                    "fused batch mode runs the exact fused engine; it is "
                    "incompatible with engine='approx' (use "
                    "mode='per-query', or warm_floors=True to accelerate "
                    "fused walks exactly)"
                )
            if group_size < 1:
                raise QueryError(
                    f"group_size must be >= 1, got {group_size}"
                )
        self.tree = tree
        self.config = config
        self.workers = workers
        self.cache_entries = cache_entries
        self.te_weight = te_weight
        self.engine = engine
        self.mode = mode
        self.group_size = group_size
        self.share = share
        self.metrics = metrics
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        self.approx_verify = bool(approx_verify)
        self.sketch_kmax = sketch_kmax
        self.sketch_budget = sketch_budget
        self.sketch_pool = sketch_pool
        self.sketch_sample_frac = sketch_sample_frac
        self.bound_cache = BoundCache(cache_entries)
        self._pickle_error: Optional[str] = None
        self._last_retries = 0
        self._retry_note: Optional[str] = None
        self._share_used: Optional[str] = None
        self._share_note: Optional[str] = None
        self._seg_owned = True
        self._worker_rss: Optional[int] = None
        self._warned_reasons: Set[str] = set()
        self._searcher = RSTkNNSearcher(
            tree,
            config,
            te_weight=te_weight,
            bound_cache=self.bound_cache,
            engine=engine,
            warm_floors=warm_floors,
            approx_verify=approx_verify,
            sketch_kmax=sketch_kmax,
            sketch_budget=sketch_budget,
            sketch_pool=sketch_pool,
            sketch_sample_frac=sketch_sample_frac,
            approx_lsh=approx_lsh,
        )
        # Resolved (env applied) on the inner searcher; workers reuse it.
        self.warm_floors = self._searcher.warm_floors
        self.approx_lsh = self._searcher.approx_lsh
        if warm:
            tree.warm_kernels()

    @classmethod
    def from_perf_config(
        cls,
        tree: IURTree,
        perf: PerfConfig,
        config: Optional[SimilarityConfig] = None,
        te_weight: float = 0.05,
        warm: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "BatchSearcher":
        """Build a batch searcher from a :class:`~repro.config.PerfConfig`.

        Applies the bundle's engine, worker, cache-size, and batch-mode
        knobs; when ``perf.observability`` is true and no ``metrics``
        registry is passed, a live
        :class:`~repro.obs.metrics.MetricsRegistry` is created and
        exposed as ``searcher.metrics`` for export after the run.
        ``perf.kernel_backend`` is process-wide state — apply it
        separately with :func:`repro.perf.set_backend`.  When
        ``perf.live_updates`` is true (or ``REPRO_LIVE_UPDATES`` arms
        it), the tree is first wrapped in a
        :class:`repro.lsm.LiveIndex` so the returned searcher serves
        mixed read/write traffic without per-write re-freezes.
        """
        if metrics is None and perf.observability:
            metrics = MetricsRegistry()
        from ..lsm import maybe_wrap_live  # noqa: PLC0415 — avoid cycle

        tree = maybe_wrap_live(tree, perf, metrics=metrics)
        return cls(
            tree,
            config,
            workers=perf.batch_workers,
            cache_entries=perf.bound_cache_entries,
            te_weight=te_weight,
            warm=warm,
            engine=perf.engine,
            mode=perf.batch_mode,
            group_size=perf.fused_group_size,
            share=perf.batch_share,
            metrics=metrics,
            retry_policy=RetryPolicy(
                max_attempts=perf.retry_attempts,
                base_delay=perf.retry_base_delay,
            ),
            # False (the default) defers to REPRO_WARM_FLOORS, so the
            # env knob can arm floors fleet-wide without config edits.
            warm_floors=perf.warm_floors or None,
            approx_verify=perf.approx_verify,
            # True (the default) likewise defers to REPRO_APPROX_LSH;
            # an explicit config False always disarms the pre-filter.
            approx_lsh=None if perf.approx_lsh else False,
            sketch_kmax=perf.sketch_kmax,
            sketch_budget=perf.sketch_budget,
            sketch_pool=perf.sketch_pool,
            sketch_sample_frac=perf.sketch_sample_frac,
        )

    def invalidate(self) -> None:
        """Drop shared bounds (call after inserting/deleting objects)."""
        self.bound_cache.clear()

    def run(self, queries: Sequence[STObject], k: int) -> BatchResult:
        """Execute the workload; results align with ``queries`` order.

        Live trees (:class:`repro.lsm.LiveIndex`) run under one epoch
        pin, so a background fold cannot retire the epoch — or the shm
        segment parallel workers are attached to — mid-batch.  While
        the overlay is dirty, fused and parallel dispatch degrade to
        the sequential merged seed walk (recorded as
        ``fallback_reason="live_overlay_dirty (...)"``); clean live
        trees run every mode, shipping the epoch's frozen tree.
        """
        pin = getattr(self.tree, "pin", None)
        if pin is None:
            return self._run_impl(queries, k)
        with pin():
            return self._run_impl(queries, k)

    def _run_impl(self, queries: Sequence[STObject], k: int) -> BatchResult:
        queries = list(queries)
        started = time.perf_counter()
        timer = PhaseTimer()
        workers_used = self.workers
        fallback_reason: Optional[str] = None
        groups: Optional[int] = None
        self._last_retries = 0
        self._retry_note = None
        self._share_used = None
        self._share_note = None
        self._worker_rss = None
        live_dirty = bool(getattr(self.tree, "overlay_dirty", False))
        if live_dirty and queries and (
            self.mode == "fused" or (self.workers > 1 and len(queries) > 1)
        ):
            # Fused and shm/pickle-parallel dispatch all run over the
            # frozen snapshot, which cannot represent pending overlay
            # writes; the merged seed walk is the only sound executor
            # until the next fold.
            workers_used = 1
            fallback_reason = (
                "live_overlay_dirty (merged seed walk; fold the overlay "
                "to restore fused/parallel dispatch)"
            )
            self._count_fallback("live_overlay_dirty")
            with timer.phase("walk"):
                results = self._run_sequential(queries, k)
        elif self.mode == "fused" and queries:
            workers_used = 1
            results, groups = self._run_fused(queries, k, timer)
        elif self.workers > 1 and len(queries) > 1:
            results = self._run_parallel(queries, k, timer)
            if results is None:  # unpicklable index — degrade gracefully
                workers_used = 1
                fallback_reason = (
                    self._pickle_error or "index not picklable"
                )
                self._count_fallback("unpicklable")
                self._warn_once(
                    "BatchSearcher parallel mode fell back to sequential "
                    f"execution: {fallback_reason}"
                )
                with timer.phase("walk"):
                    results = self._run_sequential(queries, k)
            else:
                if self._share_note is not None:
                    # shm was requested (or the default) but pickle ran;
                    # the reason is recorded either way and the warning
                    # fires only on an explicit share="shm" request.
                    fallback_reason = self._share_note
                    self._count_fallback("shm_unavailable")
                    if self.share == "shm":
                        self._warn_once(
                            "BatchSearcher shm transport unavailable; "
                            f"shipped a pickled index: {fallback_reason}"
                        )
                if self._retry_note is not None:
                    # Retries ran out for some chunks; they completed
                    # sequentially in the parent (see _run_parallel).
                    fallback_reason = (
                        f"{fallback_reason}; {self._retry_note}"
                        if fallback_reason
                        else self._retry_note
                    )
                    self._count_fallback("retry_exhausted")
                    self._warn_once(
                        "BatchSearcher parallel mode exhausted its retry "
                        f"budget: {self._retry_note}"
                    )
        else:
            workers_used = 1
            with timer.phase("walk"):
                results = self._run_sequential(queries, k)
        elapsed = time.perf_counter() - started
        n = len(queries)
        fused = self.mode == "fused"
        stats = BatchStats(
            queries=n,
            k=k,
            workers=workers_used,
            elapsed_seconds=elapsed,
            queries_per_second=(n / elapsed) if elapsed > 0 else 0.0,
            mean_ms=(elapsed * 1000.0 / n) if n else 0.0,
            total_result_ids=sum(len(r.ids) for r in results),
            cache=self.bound_cache.stats().as_dict()
            if workers_used == 1 and not fused
            else {},
            mode=self.mode,
            group_size=self.group_size if fused else None,
            groups=groups,
            fallback_reason=fallback_reason,
            share=self._share_used,
            worker_rss_bytes=self._worker_rss,
            retries=self._last_retries,
            phases=timer.as_dict(),
            latency_ms={
                point: seconds * 1000.0
                for point, seconds in latency_percentiles(
                    [r.stats.elapsed_seconds for r in results]
                ).items()
            },
        )
        self._record_run(results, timer, fused, workers_used)
        return BatchResult(results=results, stats=stats)

    def _record_run(
        self,
        results: List[SearchResult],
        timer: PhaseTimer,
        fused: bool,
        workers_used: int,
    ) -> None:
        """Mirror one run's outcome into the attached metrics registry."""
        metrics = self.metrics
        if metrics is None or not metrics.enabled:
            return
        if fused:
            engine_label = "fused"
        else:
            engine_label = self._searcher._resolve_engine(None)
        for result in results:
            record_search(metrics, engine_label, result.stats)
        timer.publish(metrics)
        if workers_used == 1 and not fused:
            self.bound_cache.publish(metrics)
        self._publish_frontier(metrics)

    def _publish_frontier(self, metrics: MetricsRegistry) -> None:
        """Drain engine frontier-batch histograms into the registry.

        The snapshot/fused engines count how many node expansions each
        batched kernel call covered (``engine.frontier_hist``); this
        folds those counts into the ``engine.frontier.batch_size``
        histogram and resets them, so repeated runs don't double-count.
        """
        snap = getattr(self.tree, "_snapshot_cache", None)
        if snap is None:
            return
        hist = metrics.histogram(
            "engine.frontier.batch_size", FRONTIER_HIST_BUCKETS
        )
        for engine in getattr(snap, "_engines", {}).values():
            counts = getattr(engine, "frontier_hist", None)
            if not counts:
                continue
            for size, times in counts.items():
                # Bulk fold (observe() per expansion would loop over
                # hundreds of thousands of events at bench scale).
                hist.counts[bisect.bisect_left(hist.buckets, size)] += times
                hist.sum += size * times
                hist.count += times
            counts.clear()

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------

    def _run_sequential(
        self, queries: Sequence[STObject], k: int
    ) -> List[SearchResult]:
        return [self._searcher.search(query, k) for query in queries]

    def _run_fused(
        self, queries: Sequence[STObject], k: int, timer: PhaseTimer
    ) -> Tuple[List[SearchResult], int]:
        """Run locality groups through the fused engine; input order."""
        from ..core.fused import make_groups

        searcher = self._searcher
        with timer.phase("freeze"):
            snap = self.tree.snapshot()
            if self.warm_floors:
                engine = snap.warm_fused_engine_for(
                    self.tree,
                    searcher.measure,
                    searcher.alpha,
                    searcher.te_weight,
                    kmax=self.sketch_kmax,
                    budget=self.sketch_budget,
                    pool=self.sketch_pool,
                    sample_frac=self.sketch_sample_frac,
                )
            else:
                engine = snap.fused_engine_for(
                    self.tree,
                    searcher.measure,
                    searcher.alpha,
                    searcher.te_weight,
                )
        results: List[Optional[SearchResult]] = [None] * len(queries)
        with timer.phase("group"):
            groups = make_groups(queries, self.group_size)
        with timer.phase("walk"):
            for member_ids in groups:
                group = [queries[i] for i in member_ids]
                for i, result in zip(member_ids, engine.run_group(group, k)):
                    results[i] = result
        return [r for r in results if r is not None], len(groups)

    def _count_fallback(self, reason: str) -> None:
        """Publish a ``batch.fallback.<reason>`` counter increment."""
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.counter(f"batch.fallback.{reason}").inc()

    def _warn_once(self, message: str) -> None:
        """Emit a degradation RuntimeWarning once per searcher.

        A long-lived searcher re-running a workload (or retrying chunk
        after chunk) would otherwise repeat the identical warning; the
        reason stays recorded on every run's ``BatchStats`` regardless.
        """
        if message in self._warned_reasons:
            return
        self._warned_reasons.add(message)
        warnings.warn(message, RuntimeWarning, stacklevel=3)

    def _share_eligibility(self) -> Tuple[bool, str]:
        """Whether the shm transport can serve this searcher's setup."""
        from .shm import shm_available  # noqa: PLC0415 — lazy perf layer

        if self.engine == "seed":
            return False, "engine 'seed' walks the object graph, not a snapshot"
        return shm_available()

    def _prepare_payload(self, timer: PhaseTimer):
        """Build the worker payload; segment-backed when possible.

        Returns ``(payload, segment)`` — ``segment`` is the live
        :class:`~repro.perf.shm.SharedSnapshotSegment` to unlink after
        the pool drains (``None`` under the pickle transport), and
        ``payload`` is ``None`` when even pickling failed (the caller
        degrades to sequential).  Export/pickle time lands in the
        ``share`` phase so it is visible next to ``walk``.
        """
        seg = None
        why = ""
        self._seg_owned = True
        if self.share != "pickle":
            ok, why = self._share_eligibility()
            if ok:
                from .shm import SharedSnapshotSegment  # noqa: PLC0415

                try:
                    with timer.phase("share"):
                        if self.warm_floors or self.engine == "approx":
                            # Bake the floor sketch into the segment so
                            # workers attach it zero-copy instead of
                            # rebuilding it once per process.
                            s = self._searcher
                            snap = self.tree.snapshot()
                            snap.sketch_for(
                                snap.engine_for(
                                    self.tree, s.measure, s.alpha,
                                    s.te_weight,
                                ),
                                kmax=self.sketch_kmax,
                                budget=self.sketch_budget,
                                pool=self.sketch_pool,
                                sample_frac=self.sketch_sample_frac,
                            )
                        exporter = getattr(
                            self.tree, "export_segment", None
                        )
                        if exporter is not None:
                            # Live trees own their segment per epoch:
                            # it is reused across runs and released by
                            # the refcounted epoch retirement, not at
                            # the end of this run.
                            seg = exporter(
                                config=self.config,
                                te_weight=self.te_weight,
                            )
                            self._seg_owned = False
                        else:
                            seg = SharedSnapshotSegment.create(
                                self.tree,
                                config=self.config,
                                te_weight=self.te_weight,
                            )
                        payload = pickle.dumps(
                            (
                                "shm",
                                seg.name,
                                seg.generation,
                                self.config,
                                self.te_weight,
                                "approx"
                                if self.engine == "approx"
                                else "snapshot",
                                self.warm_floors,
                                self.approx_verify,
                                self.approx_lsh,
                            )
                        )
                    self._share_used = "shm"
                    self._record_shm_created(seg)
                    return payload, seg
                except Exception as exc:  # degrade to pickle, loudly
                    if seg is not None and self._seg_owned:
                        seg.release()
                    seg = None
                    why = f"{type(exc).__name__}: {exc}"
            self._share_note = f"shm_unavailable ({why})"
        try:
            with timer.phase("share"):
                payload = pickle.dumps(
                    (
                        "pickle",
                        # Clean live trees ship their epoch's frozen
                        # tree — the LiveIndex itself holds locks and a
                        # freezer thread, which do not pickle.
                        getattr(self.tree, "frozen_tree", self.tree),
                        self.config,
                        self.te_weight,
                        self.cache_entries,
                        self.engine,
                        self.warm_floors,
                        self.approx_verify,
                        self.approx_lsh,
                    )
                )
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            self._pickle_error = (
                f"index not picklable ({type(exc).__name__}: {exc})"
            )
            return None, None
        self._share_used = "pickle"
        return payload, None

    def _record_shm_created(self, seg) -> None:
        """Publish ``batch.shm.*`` instruments for one segment export."""
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.counter("batch.shm.created").inc()
            metrics.gauge("batch.shm.bytes").set(seg.nbytes)

    def _run_parallel(
        self, queries: Sequence[STObject], k: int, timer: PhaseTimer
    ) -> Optional[List[SearchResult]]:
        """Fan the workload out over a process pool, retrying failures.

        The index reaches the pool via :meth:`_prepare_payload` — a
        shared-memory snapshot segment whose *name* is the payload, or
        a pickled tree when shm is unavailable.  The workload is cut
        into index-contiguous chunks (one future each).  A chunk whose
        worker raises — or whose worker process dies, breaking the
        whole pool — is re-enqueued with a bumped attempt number under
        :attr:`retry_policy` (backoff + jitter, one ``service.retries``
        tick per re-enqueue); chunks that already completed keep their
        results, and a broken pool is rebuilt before the retry round (a
        rebuilt pool re-attaches the same still-linked segment).  A
        chunk that exhausts its attempts runs sequentially in the
        parent, so the batch always completes with results
        byte-identical to a clean run.
        """
        payload, seg = self._prepare_payload(timer)
        if payload is None:
            return None
        n = len(queries)
        workers = min(self.workers, n)
        results: List[Optional[SearchResult]] = [None] * n
        # Chunking keeps per-task IPC overhead low while still spreading
        # the workload; each worker's bound cache warms on its own chunk.
        chunksize = max(1, n // (workers * 4))
        pending: List[Tuple[List[Tuple[int, STObject, int, int]], int]] = [
            (
                [(i, queries[i], k, 0) for i in range(lo, min(lo + chunksize, n))],
                0,
            )
            for lo in range(0, n, chunksize)
        ]
        policy = self.retry_policy
        exhausted: List[List[Tuple[int, STObject, int, int]]] = []
        retries = 0

        def new_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(payload,),
            )

        pool = new_pool()
        try:
            with timer.phase("walk"):
                while pending:
                    round_chunks, pending = pending, []
                    futures = [
                        (pool.submit(_run_chunk, chunk), chunk, attempt)
                        for chunk, attempt in round_chunks
                    ]
                    broken = False
                    failed: List[
                        Tuple[List[Tuple[int, STObject, int, int]], int]
                    ] = []
                    for future, chunk, attempt in futures:
                        try:
                            chunk_results, rss = future.result()
                        except BrokenProcessPool:
                            broken = True
                            failed.append((chunk, attempt))
                            continue
                        except Exception:  # worker-side error; pool survives
                            failed.append((chunk, attempt))
                            continue
                        for i, result in chunk_results:
                            results[i] = result
                        if rss is not None and rss > (self._worker_rss or 0):
                            self._worker_rss = rss
                    if broken:
                        pool.shutdown(wait=False)
                        pool = new_pool()
                    for chunk, attempt in failed:
                        next_attempt = attempt + 1
                        retried = [
                            (i, query, k_, next_attempt)
                            for i, query, k_, _ in chunk
                        ]
                        if next_attempt >= policy.max_attempts:
                            exhausted.append(retried)
                            continue
                        retries += 1
                        delay = policy.delay(next_attempt, salt=chunk[0][0])
                        if delay > 0.0:
                            time.sleep(delay)
                        pending.append((retried, next_attempt))
        finally:
            pool.shutdown()
            if seg is not None and self._seg_owned:
                # Workers' mappings died with their processes; the
                # parent's unlink is the last reference to the segment.
                # (Epoch-owned segments of a live tree are released by
                # epoch retirement instead, so later runs re-attach.)
                seg.release()
        if seg is not None:
            metrics = self.metrics
            if metrics is not None and metrics.enabled:
                metrics.counter("batch.shm.attach_workers").inc(workers)
        if exhausted:
            searcher = self._searcher
            with timer.phase("walk"):
                for chunk in exhausted:
                    for i, query, k_, _ in chunk:
                        results[i] = searcher.search(query, k_)
            self._retry_note = (
                f"retry budget exhausted ({policy.max_attempts} attempts); "
                f"{sum(len(c) for c in exhausted)} queries ran sequentially"
            )
        self._last_retries = retries
        if retries and self.metrics is not None and self.metrics.enabled:
            self.metrics.counter(RETRIES_COUNTER).inc(retries)
        return [r for r in results if r is not None]
