"""Hot-path similarity kernels over frozen sparse-vector forms.

Every similarity the branch-and-bound searcher evaluates reduces to four
sparse reductions over a pair of term-weight vectors:

* ``dot``           — ``Σ_t a[t] * b[t]``        (shared terms only)
* ``sum_min``       — ``Σ_t min(a[t], b[t])``    (shared terms only)
* ``sum_max``       — ``Σ_t max(a[t], b[t])``    (union of terms)
* ``overlap_count`` — ``|T(a) ∩ T(b)|``

The seed implementation walked both sorted id tuples with a Python-level
merge loop — O(|a| + |b|) interpreter iterations per call.  This module
replaces that with *frozen* vector forms built once per vector (at index
time for tree summaries) and reused by every subsequent kernel call:

* the **python** backend stores a ``{term_id: weight}`` dict plus a
  ``frozenset`` of term ids and a 64-bit term *signature* (a Bloom-style
  bitmask of ``1 << (tid % 64)``).  Disjoint pairs — the common case for
  bound computations — are usually rejected by a single integer AND
  before any set work; overlapping (or mask-colliding) pairs fall back
  to one C-level set intersection, so the reduction only ever touches
  shared terms, O(min(|a|, |b|)) with no interpreter-level merge;
* the **numpy** backend stores sorted id/weight arrays and reduces with
  a ``searchsorted``-based sparse intersection (no per-call concatenate
  and re-sort, unlike ``np.intersect1d``) — worthwhile for long
  documents, opt-in because array dispatch overhead dominates on the
  short vectors typical of POI corpora.

``sum_max`` never walks the union: with per-vector weight sums ``W``
precomputed at freeze time, ``Σ max = W_a + W_b - Σ_shared min``.

Backend selection: the ``REPRO_KERNEL`` environment variable
(``python`` | ``numpy`` | ``auto``), overridable at runtime with
:func:`set_backend` / :func:`use_backend`.  Requesting ``numpy`` when
numpy is not importable degrades gracefully to ``python``.  ``auto`` is
*per-vector*: vectors shorter than the measured crossover
(:data:`AUTO_NUMPY_MIN_TERMS`) freeze into the python form, long ones
into the numpy form, and mixed pairs reduce through the python path —
so a POI-style corpus never pays numpy dispatch overhead just because
numpy happens to be importable.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Backends a caller may request (``auto`` resolves to one of the others).
KERNEL_BACKENDS = ("python", "numpy", "auto")

#: Environment variable consulted for the default backend.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Vector length at which the numpy reduction starts beating the
#: pure-python one (measured on this container: python wins up to ~128
#: terms, parity near 256, numpy ~2x faster at 1024).  ``auto`` freezes
#: vectors below this length into the python form.  Overridable via
#: ``REPRO_KERNEL_CROSSOVER`` for different hardware.
AUTO_NUMPY_MIN_TERMS = 256

#: Environment variable overriding :data:`AUTO_NUMPY_MIN_TERMS`.
CROSSOVER_ENV_VAR = "REPRO_KERNEL_CROSSOVER"

_np = None
_np_checked = False
_backend: Optional[str] = None  # resolved lazily; None = not yet resolved
_crossover: Optional[int] = None  # resolved lazily from the environment


def _numpy():
    """The numpy module, or None when it cannot be imported."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy  # noqa: PLC0415 — optional dependency probe

            _np = numpy
        except ImportError:  # pragma: no cover - depends on environment
            _np = None
    return _np


def numpy_available() -> bool:
    """True when the numpy backend can actually run."""
    return _numpy() is not None


def _resolve(name: str) -> str:
    """Map a requested backend name to a runnable backend."""
    if name not in KERNEL_BACKENDS:
        raise ConfigError(
            f"unknown kernel backend {name!r}; expected one of {KERNEL_BACKENDS}"
        )
    if name == "auto":
        # Per-vector choice (see freeze()); without numpy there is no
        # choice to make and auto degenerates to the python backend.
        return "auto" if numpy_available() else "python"
    if name == "numpy" and not numpy_available():
        warnings.warn(
            "REPRO_KERNEL=numpy requested but numpy is not importable; "
            "falling back to the pure-python kernel backend",
            RuntimeWarning,
            stacklevel=3,
        )
        return "python"
    return name


def auto_crossover() -> int:
    """Vector length above which ``auto`` freezes into the numpy form."""
    global _crossover
    if _crossover is None:
        raw = os.environ.get(CROSSOVER_ENV_VAR)
        if raw is None:
            _crossover = AUTO_NUMPY_MIN_TERMS
        else:
            try:
                _crossover = max(0, int(raw))
            except ValueError:
                warnings.warn(
                    f"{CROSSOVER_ENV_VAR}={raw!r} is not an integer; using "
                    f"the measured default {AUTO_NUMPY_MIN_TERMS}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                _crossover = AUTO_NUMPY_MIN_TERMS
    return _crossover


def is_current(form) -> bool:
    """Whether a frozen form is usable under the active backend.

    Under ``auto`` both concrete forms interoperate (mixed pairs reduce
    through the python path), so nothing ever needs re-freezing; under an
    explicit backend the form must match it exactly.
    """
    name = backend_name()
    if name == "auto":
        return True
    return form.backend == name


def backend_name() -> str:
    """The active kernel backend (``python``, ``numpy``, or ``auto``).

    A typo in the environment variable warns and falls back to the
    ``python`` backend rather than failing the first query that touches
    a vector; :func:`set_backend` stays strict for explicit requests.
    """
    global _backend
    if _backend is None:
        requested = os.environ.get(KERNEL_ENV_VAR, "python")
        try:
            _backend = _resolve(requested)
        except ConfigError:
            warnings.warn(
                f"{KERNEL_ENV_VAR}={requested!r} is not one of "
                f"{KERNEL_BACKENDS}; using the python backend",
                RuntimeWarning,
                stacklevel=2,
            )
            _backend = "python"
    return _backend


def set_backend(name: str) -> str:
    """Select the kernel backend; returns the previously active one.

    Frozen forms are tagged with the backend that built them, so vectors
    frozen under the old backend re-freeze lazily on next use.
    """
    global _backend
    previous = backend_name()
    _backend = _resolve(name)
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Context manager running a block under a specific backend."""
    previous = set_backend(name)
    try:
        yield backend_name()
    finally:
        set_backend(previous)


class PyFrozenVector:
    """Python-backend frozen form: dict + frozenset + 64-bit signature."""

    __slots__ = ("weights", "keys", "mask", "norm_sq", "wsum")

    backend = "python"

    def __init__(
        self, ids: Sequence[int], weights: Sequence[float], norm_sq: float
    ) -> None:
        self.weights = dict(zip(ids, weights))
        self.keys = frozenset(ids)
        mask = 0
        for tid in ids:
            mask |= 1 << (tid & 63)
        self.mask = mask
        self.norm_sq = norm_sq
        self.wsum = sum(weights)

    def _py(self) -> "PyFrozenVector":
        """Self — already the python form (mixed-pair interop hook)."""
        return self

    def dot(self, other) -> float:
        """``Σ_t a[t] * b[t]`` over shared terms (0.0 when disjoint)."""
        if not (self.mask & other.mask):
            return 0.0
        if type(other) is not PyFrozenVector:
            other = other._py()
        common = self.keys & other.keys
        if not common:
            return 0.0
        a, b = self.weights, other.weights
        return sum(a[t] * b[t] for t in common)

    def sum_min(self, other) -> float:
        """``Σ_t min(a[t], b[t])`` — only shared terms contribute."""
        if not (self.mask & other.mask):
            return 0.0
        if type(other) is not PyFrozenVector:
            other = other._py()
        common = self.keys & other.keys
        if not common:
            return 0.0
        a, b = self.weights, other.weights
        total = 0.0
        for t in common:
            aw, bw = a[t], b[t]
            total += aw if aw < bw else bw
        return total

    def sum_max(self, other) -> float:
        """``Σ_t max(a[t], b[t])`` over the union of terms."""
        # Σ max = Σa + Σb − Σ_shared min; never walks the union.
        return self.wsum + other.wsum - self.sum_min(other)

    def overlap_count(self, other) -> int:
        """Number of shared terms."""
        if not (self.mask & other.mask):
            return 0
        if type(other) is not PyFrozenVector:
            other = other._py()
        return len(self.keys & other.keys)

    def ext_jaccard(self, other) -> float:
        """Fused Extended Jaccard ``<a,b> / (|a|² + |b|² − <a,b>)``.

        The paper's default measure, fused into one kernel call so the
        disjoint fast path (the bulk of exact-score evaluations) is a
        single integer AND away from its answer of 0.
        """
        if not (self.mask & other.mask):
            return 0.0
        if type(other) is not PyFrozenVector:
            other = other._py()
        common = self.keys & other.keys
        if not common:
            return 0.0
        a, b = self.weights, other.weights
        d = sum(a[t] * b[t] for t in common)
        # denom >= d > 0 by Cauchy-Schwarz when the vectors share terms.
        return d / (self.norm_sq + other.norm_sq - d)


class NumpyFrozenVector:
    """Numpy-backend frozen form: sorted id/weight arrays.

    Mixed pairs (the other operand frozen into the python form, which
    ``auto`` produces for short vectors) delegate to the python
    reduction over a lazily built and cached python form of *this*
    vector — long vectors pay the dict build once, not per call.
    """

    __slots__ = ("ids", "weights", "mask", "norm_sq", "wsum", "_pyform")

    backend = "numpy"

    def __init__(
        self, ids: Sequence[int], weights: Sequence[float], norm_sq: float
    ) -> None:
        np = _numpy()
        self.ids = np.asarray(ids, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        mask = 0
        for tid in ids:
            mask |= 1 << (tid & 63)
        self.mask = mask
        self.norm_sq = norm_sq
        self.wsum = float(self.weights.sum()) if len(weights) else 0.0
        self._pyform: Optional[PyFrozenVector] = None

    def _py(self) -> PyFrozenVector:
        """A python-form view of this vector (built once, cached)."""
        form = self._pyform
        if form is None:
            form = PyFrozenVector(
                [int(t) for t in self.ids],
                [float(w) for w in self.weights],
                self.norm_sq,
            )
            self._pyform = form
        return form

    def _common(self, other: "NumpyFrozenVector"):
        """Index pairs of shared terms via binary search.

        ``searchsorted`` over the longer operand costs O(min log max)
        with no per-call concatenate-and-argsort (``np.intersect1d``
        re-sorts both operands every call — the regression
        BENCH_kernels.json surfaced).  Both operands are non-empty here:
        empty vectors carry a zero signature and are rejected by the
        mask AND before any array work.
        """
        np = _numpy()
        a_ids, a_w, b_ids, b_w = self.ids, self.weights, other.ids, other.weights
        if a_ids.size > b_ids.size:
            a_ids, a_w, b_ids, b_w = b_ids, b_w, a_ids, a_w
        pos = np.searchsorted(b_ids, a_ids)
        np.minimum(pos, b_ids.size - 1, out=pos)
        match = b_ids[pos] == a_ids
        return a_w[match], b_w[pos[match]]

    def dot(self, other) -> float:
        """``Σ_t a[t] * b[t]`` over shared terms (0.0 when disjoint)."""
        if not (self.mask & other.mask):
            return 0.0
        if type(other) is not NumpyFrozenVector:
            return self._py().dot(other)
        wa, wb = self._common(other)
        if wa.size == 0:
            return 0.0
        return float(_numpy().dot(wa, wb))

    def sum_min(self, other) -> float:
        """``Σ_t min(a[t], b[t])`` — only shared terms contribute."""
        if not (self.mask & other.mask):
            return 0.0
        if type(other) is not NumpyFrozenVector:
            return self._py().sum_min(other)
        wa, wb = self._common(other)
        if wa.size == 0:
            return 0.0
        return float(_numpy().minimum(wa, wb).sum())

    def sum_max(self, other) -> float:
        """``Σ_t max(a[t], b[t])`` over the union of terms."""
        return self.wsum + other.wsum - self.sum_min(other)

    def overlap_count(self, other) -> int:
        """Number of shared terms."""
        if not (self.mask & other.mask):
            return 0
        if type(other) is not NumpyFrozenVector:
            return self._py().overlap_count(other)
        wa, _ = self._common(other)
        return int(wa.size)

    def ext_jaccard(self, other) -> float:
        """Fused Extended Jaccard ``<a,b> / (|a|² + |b|² − <a,b>)``."""
        if not (self.mask & other.mask):
            return 0.0
        if type(other) is not NumpyFrozenVector:
            return self._py().ext_jaccard(other)
        wa, wb = self._common(other)
        if wa.size == 0:
            return 0.0
        d = float(_numpy().dot(wa, wb))
        return d / (self.norm_sq + other.norm_sq - d)


def freeze(
    ids: Tuple[int, ...], weights: Tuple[float, ...], norm_sq: float
):
    """Build the active backend's frozen form of one sparse vector.

    Under ``auto``, short vectors (below :func:`auto_crossover` terms)
    freeze into the python form and long ones into the numpy form; the
    two interoperate, mixed pairs reducing through the python path.
    """
    name = backend_name()
    if name == "numpy" or (name == "auto" and len(ids) >= auto_crossover()):
        return NumpyFrozenVector(ids, weights, norm_sq)
    return PyFrozenVector(ids, weights, norm_sq)


def group_text_dots(postings, ids, weights, n_rows, np=None):
    """Dot products of one query against every row of a postings map.

    ``postings`` maps ``term_id -> (row_indices, row_weights)`` (the
    columnar layout of :class:`repro.perf.snapshot.SnapshotTextMatrix`);
    ``ids``/``weights`` are the query's sparse terms.  Returns
    ``(dots, overlaps)`` of length ``n_rows`` — numpy arrays when ``np``
    is passed, plain lists otherwise — or ``None`` when no query term
    appears in any row (every dot is exactly 0.0).

    Float-parity contract: a row touched by at most **two** query terms
    accumulates its dot in term order with exactly one addition, which
    IEEE-754 guarantees bit-identical to the per-pair frozen-kernel
    reduction regardless of its iteration order (addition and
    multiplication are commutative, exactly rounded ops).  Rows with
    three or more shared terms are *not* guaranteed bit-identical —
    callers must recompute those few rows through the scalar kernel
    (``overlaps`` exists precisely to find them).
    """
    if np is not None:
        rows_parts = []
        val_parts = []
        for tid, w in zip(ids, weights):
            p = postings.get(tid)
            if p is not None:
                rows_parts.append(p[0])
                val_parts.append(p[1] * w)
        if not rows_parts:
            return None
        rows = np.concatenate(rows_parts)
        dots = np.bincount(
            rows, weights=np.concatenate(val_parts), minlength=n_rows
        )
        overlaps = np.bincount(rows, minlength=n_rows)
        return dots, overlaps
    dots = [0.0] * n_rows
    overlaps = [0] * n_rows
    touched = False
    for tid, w in zip(ids, weights):
        p = postings.get(tid)
        if p is None:
            continue
        touched = True
        for r, pw in zip(p[0], p[1]):
            dots[r] += pw * w
            overlaps[r] += 1
    return (dots, overlaps) if touched else None


def group_spatial_components(
    qxlo, qylo, qxhi, qyhi, bxlo, bylo, bxhi, byhi, np=None
):
    """Spatial bound components of G query rects vs C block rects.

    Returns six ``(G, C)`` tables ``(dx_min, dy_min, dx_max, dy_max,
    pdx, pdy)`` — the per-axis separations feeding the min/max distance
    ``hypot`` finishes plus the point deltas for exact object scores —
    as numpy arrays when ``np`` is passed, nested lists otherwise.  The
    expressions mirror the scalar ``q_st``/``q_exact`` call sites of
    :class:`repro.core.traversal.SnapshotEngine` term for term
    (subtraction, ``abs`` and ``max`` are exactly rounded, so each
    component is bit-identical to its scalar counterpart); callers
    finish with scalar ``math.hypot`` and clamps for full bit parity.
    """
    if np is not None:
        qxlo = np.asarray(qxlo)[:, None]
        qylo = np.asarray(qylo)[:, None]
        qxhi = np.asarray(qxhi)[:, None]
        qyhi = np.asarray(qyhi)[:, None]
        bxlo = np.asarray(bxlo)[None, :]
        bylo = np.asarray(bylo)[None, :]
        bxhi = np.asarray(bxhi)[None, :]
        byhi = np.asarray(byhi)[None, :]
        return (
            np.maximum(np.maximum(qxlo - bxhi, 0.0), bxlo - qxhi),
            np.maximum(np.maximum(qylo - byhi, 0.0), bylo - qyhi),
            np.maximum(np.abs(qxhi - bxlo), np.abs(bxhi - qxlo)),
            np.maximum(np.abs(qyhi - bylo), np.abs(byhi - qylo)),
            qxlo - bxlo,
            qylo - bylo,
        )
    dxm_t, dym_t, dxM_t, dyM_t, pdx_t, pdy_t = [], [], [], [], [], []
    for g in range(len(qxlo)):
        gx0, gy0, gx1, gy1 = qxlo[g], qylo[g], qxhi[g], qyhi[g]
        dxm_t.append([max(gx0 - bxhi[c], 0.0, bxlo[c] - gx1) for c in range(len(bxlo))])
        dym_t.append([max(gy0 - byhi[c], 0.0, bylo[c] - gy1) for c in range(len(bxlo))])
        dxM_t.append([max(abs(gx1 - bxlo[c]), abs(bxhi[c] - gx0)) for c in range(len(bxlo))])
        dyM_t.append([max(abs(gy1 - bylo[c]), abs(byhi[c] - gy0)) for c in range(len(bxlo))])
        pdx_t.append([gx0 - bxlo[c] for c in range(len(bxlo))])
        pdy_t.append([gy0 - bylo[c] for c in range(len(bxlo))])
    return dxm_t, dym_t, dxM_t, dyM_t, pdx_t, pdy_t


def frontier_spatial_components(
    qxlo, qylo, qxhi, qyhi, bxlo, bylo, bxhi, byhi, np
):
    """Spatial bound components of ONE query rect vs a batch of rects.

    The single-query row of :func:`group_spatial_components`: ``qxlo``…
    are scalars, ``bxlo``… are aligned arrays gathered from any set of
    snapshot slots (one node's children, or the concatenated children of
    several frontier nodes — the batched-expansion path of
    :class:`repro.core.traversal.SnapshotEngine`).  Returns six 1-D
    arrays ``(dx_min, dy_min, dx_max, dy_max, pdx, pdy)``.  Every
    expression mirrors the scalar ``q_st``/``q_exact`` call sites term
    for term (subtraction, ``abs`` and ``max`` are exactly rounded, so
    each element is bit-identical to its scalar counterpart); callers
    finish with scalar ``math.hypot`` and clamps for full bit parity.
    """
    return (
        np.maximum(np.maximum(qxlo - bxhi, 0.0), bxlo - qxhi),
        np.maximum(np.maximum(qylo - byhi, 0.0), bylo - qyhi),
        np.maximum(np.abs(qxhi - bxlo), np.abs(bxhi - qxlo)),
        np.maximum(np.abs(qyhi - bylo), np.abs(byhi - qylo)),
        qxlo - bxlo,
        qylo - bylo,
    )


def dot(a, b) -> float:
    """``Σ_t a[t] * b[t]`` over two same-backend frozen vectors."""
    return a.dot(b)


def sum_min(a, b) -> float:
    """``Σ_t min(a[t], b[t])`` over two same-backend frozen vectors."""
    return a.sum_min(b)


def sum_max(a, b) -> float:
    """``Σ_t max(a[t], b[t])`` over two same-backend frozen vectors."""
    return a.sum_max(b)


def overlap_count(a, b) -> int:
    """Number of shared terms of two same-backend frozen vectors."""
    return a.overlap_count(b)
