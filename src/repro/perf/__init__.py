"""Performance subsystem: similarity kernels, bound caching, batch engine.

Three layers, each usable on its own:

* :mod:`repro.perf.kernels` — frozen sparse-vector forms and the
  merge-free reduction kernels behind every text similarity, with a
  pure-python backend and an optional numpy backend selected by the
  ``REPRO_KERNEL`` environment variable;
* :mod:`repro.perf.cache` — size-bounded LRU pair-bound caches shared
  across queries by a searcher or batch engine;
* :mod:`repro.perf.batch` — :class:`BatchSearcher`, which runs a query
  workload over one index sequentially (shared bound cache) or fanned
  out across worker processes;
* :mod:`repro.perf.snapshot` — :class:`IndexSnapshot`, the immutable
  struct-of-arrays freeze of a built tree that the ``snapshot``
  traversal engine (:mod:`repro.core.traversal`) runs over;
* :mod:`repro.perf.shm` — :class:`SharedSnapshotSegment` /
  :func:`attach`, the zero-copy shared-memory transport parallel batch
  mode ships snapshots over instead of pickling the tree per worker.

``batch``, ``snapshot``, and ``shm`` are imported lazily: they depend
on layers that transitively use the kernels.
"""

from .cache import (
    DEFAULT_BOUND_CACHE_ENTRIES,
    BoundCache,
    CacheStats,
    LRUCache,
)
from .kernels import (
    KERNEL_BACKENDS,
    KERNEL_ENV_VAR,
    backend_name,
    numpy_available,
    set_backend,
    use_backend,
)

__all__ = [
    "KERNEL_BACKENDS",
    "KERNEL_ENV_VAR",
    "backend_name",
    "numpy_available",
    "set_backend",
    "use_backend",
    "DEFAULT_BOUND_CACHE_ENTRIES",
    "BoundCache",
    "CacheStats",
    "LRUCache",
    "BatchSearcher",
    "BatchResult",
    "BatchStats",
    "IndexSnapshot",
    "SharedSnapshotSegment",
    "AttachedIndex",
    "attach",
    "shm_available",
]


def __getattr__(name: str):
    """Lazy access to higher layers (avoids a text->core import cycle)."""
    if name in ("BatchSearcher", "BatchResult", "BatchStats"):
        from . import batch

        return getattr(batch, name)
    if name == "IndexSnapshot":
        from .snapshot import IndexSnapshot

        return IndexSnapshot
    if name in ("SharedSnapshotSegment", "AttachedIndex", "attach", "shm_available"):
        from . import shm

        return getattr(shm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
