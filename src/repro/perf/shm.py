"""Zero-copy shared-memory snapshot transport for parallel workers.

The parallel batch path used to pickle the whole tree into every pool
worker: the object graph (nodes, entries, interval vectors, sparse
vectors) is serialized once by the parent and materialized N times, once
per worker — exactly the per-worker copy cost the flat struct-of-arrays
:class:`~repro.perf.snapshot.IndexSnapshot` was designed to eliminate.

This module serializes a frozen snapshot (and its
:class:`~repro.perf.snapshot.SnapshotTextMatrix`) into **one**
``multiprocessing.shared_memory`` segment of flat numpy-compatible
arrays plus a small pickled header of integer offset tables:

* the parent :meth:`SharedSnapshotSegment.create`\\ s the segment —
  one memcpy of the columnar arrays, no object-graph walk at ship time;
* each worker :func:`attach`\\ es by *name*: the coordinate, topology,
  and postings columns are mapped in place (zero-copy ``memoryview``
  casts and ``numpy.frombuffer`` views over the segment), and the
  object-level forms the traversal engines need — ``SparseVector``,
  ``IntervalVector``, frozen kernel forms — are materialized **lazily,
  per touched slot**, so a worker's private RSS grows with the slots its
  queries visit, not with the index;
* the lifecycle is refcounted and generation-checked:
  ``create`` stamps the tree's structural
  :attr:`~repro.index.iurtree.IURTree.generation` into the segment
  header, ``attach`` verifies it against the generation the parent
  advertised, and a mismatch raises :class:`StaleSegmentError` — a
  stale segment can never silently serve a mutated index.  The refcount
  word is advisory (incremented on create/attach, decremented on
  close) and surfaces in :meth:`SharedSnapshotSegment.describe` and
  worker diagnostics; the parent always owns the single ``unlink``.

Bit-parity: every float shipped through the segment is the exact IEEE
value the parent computed (memcpy, not reformatting), and frozen kernel
forms are rebuilt worker-side from the same sorted ``(ids, weights,
norm_sq)`` triples the parent's vectors hold — identical construction
order means identical dict/frozenset layouts and therefore identical
reduction order, which is the same argument the pickle path relies on
(:meth:`repro.text.vector.SparseVector.__setstate__`).  Result ids and
decision counters of shm-backed workers are byte-identical to
pickle-backed and sequential runs; only I/O cache temperature differs
(each worker starts a cold private buffer mirror, as a freshly
unpickled tree would after ``reset_io``).

Availability: the transport needs numpy (for in-place array views) and
an engine that runs over snapshots; :func:`shm_available` reports the
reason when it cannot run, which
:class:`~repro.perf.batch.BatchSearcher` records as
``BatchStats.fallback_reason = "shm_unavailable (...)"`` while falling
back to the pickle transport.
"""

from __future__ import annotations

import os
import pickle
import struct
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SimilarityConfig
from ..errors import SnapshotSegmentError, StaleSegmentError
from ..storage.iostats import IOStats
from ..text.interval import IntervalVector
from ..text.similarity import make_measure
from ..text.vector import SparseVector
from . import kernels
from .snapshot import IndexSnapshot, SnapshotTextMatrix

#: First eight bytes of every segment (version-bumped on layout changes;
#: 02 added the optional frozen kNNL sketch arrays; 03 added the
#: per-sketch ``obj_profile`` / ``row_objects`` / ``lsh_sig`` arrays
#: and the ``sample_frac`` / ``curves_true`` metadata of the true-kNN
#: build).
SEGMENT_MAGIC = b"RSTSHM03"

#: Common prefix of every segment version's magic; a segment whose
#: magic carries this prefix but a different version byte pair was
#: written by another build of this codebase (stale, not foreign).
_MAGIC_PREFIX = b"RSTSHM"

#: Byte offsets of the fixed-width header words (little-endian int64).
_OFF_GENERATION = 8
_OFF_REFCOUNT = 16
_OFF_HEADER_START = 24
_OFF_HEADER_LEN = 32
_ARRAY_REGION = 64

#: Scalar-array columns shipped for the snapshot proper, in layout order.
_SNAP_COLUMNS = (
    ("xlo", "d"),
    ("ylo", "d"),
    ("xhi", "d"),
    ("yhi", "d"),
    ("cnt", "q"),
    ("ref", "q"),
    ("first_child", "q"),
    ("last_child", "q"),
    ("record_id", "q"),
    ("is_obj", "B"),
    ("ent_root", "d"),
    ("ent_child", "d"),
)

_DTYPE_SIZE = {"d": 8, "q": 8, "Q": 8, "B": 1}


def shm_available() -> Tuple[bool, str]:
    """Whether the shared-memory transport can run here, and why not.

    Needs numpy (segments are packed and mapped as flat float/int
    arrays) and ``multiprocessing.shared_memory`` (present on every
    supported Python, but probed so exotic platforms degrade to the
    pickle transport instead of crashing the pool).
    """
    if kernels._numpy() is None:
        return False, "numpy not importable"
    try:
        from multiprocessing import shared_memory  # noqa: F401,PLC0415
    except ImportError:  # pragma: no cover - platform-dependent
        return False, "multiprocessing.shared_memory not importable"
    return True, ""


def _read_word(buf, offset: int) -> int:
    return struct.unpack_from("<q", buf, offset)[0]


def _write_word(buf, offset: int, value: int) -> None:
    struct.pack_into("<q", buf, offset, value)


def _align(offset: int, granule: int = 16) -> int:
    return (offset + granule - 1) // granule * granule


class _VectorPool:
    """Deduplicating CSR accumulator for the export's sparse vectors.

    Tree summaries share ``SparseVector`` instances heavily (an object's
    exact vector is also its leaf cluster's intersection *and* union),
    so the pool keys on instance identity and stores each distinct
    vector once.
    """

    def __init__(self) -> None:
        self._index: Dict[int, int] = {}
        self.indptr: List[int] = [0]
        self.ids: List[int] = []
        self.weights: List[float] = []
        self.nsq: List[float] = []

    def add(self, vec: SparseVector) -> int:
        idx = self._index.get(id(vec))
        if idx is None:
            idx = len(self.nsq)
            self._index[id(vec)] = idx
            self.ids.extend(vec.term_ids())
            self.weights.extend(w for _, w in vec.items())
            self.indptr.append(len(self.ids))
            self.nsq.append(vec.norm_squared)
        return idx


def _pack_postings(post, np):
    """Flatten one ``term_id -> (rows, weights)`` map into CSR arrays."""
    tids = sorted(post)
    indptr = [0]
    rows_parts = []
    weight_parts = []
    total = 0
    for tid in tids:
        rows, weights = post[tid]
        total += len(rows)
        indptr.append(total)
        rows_parts.append(np.asarray(rows, dtype=np.int64))
        weight_parts.append(np.asarray(weights, dtype=np.float64))
    if rows_parts:
        rows_flat = np.concatenate(rows_parts)
        weights_flat = np.concatenate(weight_parts)
    else:
        rows_flat = np.zeros(0, dtype=np.int64)
        weights_flat = np.zeros(0, dtype=np.float64)
    return (
        np.asarray(tids, dtype=np.int64),
        np.asarray(indptr, dtype=np.int64),
        rows_flat,
        weights_flat,
    )


def _export_arrays(tree, snap: IndexSnapshot, matrix: SnapshotTextMatrix):
    """The ``(name -> numpy array)`` table one segment carries."""
    np = kernels._numpy()
    arrays: "OrderedDict[str, object]" = OrderedDict()
    for name, code in _SNAP_COLUMNS:
        dtype = {"d": np.float64, "q": np.int64, "B": np.uint8}[code]
        arrays[name] = np.frombuffer(
            memoryview(getattr(snap, name)), dtype=dtype
        )

    pool = _VectorPool()
    cl_int: List[int] = []
    cl_uni: List[int] = []
    cl_docs: List[int] = []
    cl_indptr: List[int] = [0]
    obj_vecidx: List[int] = []
    for slot in range(snap.n_slots):
        for iv, *_ in snap.clusters[slot]:
            cl_int.append(pool.add(iv.intersection))
            cl_uni.append(pool.add(iv.union))
            cl_docs.append(iv.doc_count)
        cl_indptr.append(len(cl_int))
        vec = snap.obj_vec[slot]
        obj_vecidx.append(-1 if vec is None else pool.add(vec))
    arrays["vec_indptr"] = np.asarray(pool.indptr, dtype=np.int64)
    arrays["vec_ids"] = np.asarray(pool.ids, dtype=np.int64)
    arrays["vec_weights"] = np.asarray(pool.weights, dtype=np.float64)
    arrays["vec_nsq"] = np.asarray(pool.nsq, dtype=np.float64)
    arrays["cl_indptr"] = np.asarray(cl_indptr, dtype=np.int64)
    arrays["cl_int"] = np.asarray(cl_int, dtype=np.int64)
    arrays["cl_uni"] = np.asarray(cl_uni, dtype=np.int64)
    arrays["cl_docs"] = np.asarray(cl_docs, dtype=np.int64)
    arrays["obj_vecidx"] = np.asarray(obj_vecidx, dtype=np.int64)

    # Text matrix: squared norms and the three postings families in CSR
    # form, so attach builds zero-copy ``term -> (rows, weights)`` views.
    arrays["tm_insq"] = np.asarray(matrix.insq, dtype=np.float64)
    arrays["tm_unsq"] = np.asarray(matrix.unsq, dtype=np.float64)
    arrays["tm_obj_row"] = np.asarray(matrix.obj_row, dtype=np.int64)
    arrays["tm_obj_nsq"] = np.asarray(matrix.obj_nsq, dtype=np.float64)
    for family, post in (
        ("int", matrix.int_postings),
        ("uni", matrix.uni_postings),
        ("obj", matrix.obj_postings),
    ):
        terms, indptr, rows, weights = _pack_postings(post, np)
        arrays[f"tm_{family}_terms"] = terms
        arrays[f"tm_{family}_indptr"] = indptr
        arrays[f"tm_{family}_rows"] = rows
        arrays[f"tm_{family}_weights"] = weights

    # Record page table: the worker-side buffer mirror charges the same
    # page spans the live tree's DiskManager would.
    rids = sorted({int(r) for r in snap.record_id if r >= 0})
    arrays["rpt_ids"] = np.asarray(rids, dtype=np.int64)
    arrays["rpt_pages"] = np.asarray(
        [tree.disk.record_pages(r) for r in rids], dtype=np.int64
    )
    return arrays


class SharedSnapshotSegment:
    """Parent-side owner handle of one exported snapshot segment.

    Created with :meth:`create`, shipped to workers by :attr:`name`,
    and torn down with :meth:`close` + :meth:`unlink` (or one
    :meth:`release` call / ``with`` block).  The creating process is the
    only one that may unlink.
    """

    def __init__(self, shm, generation: int, nbytes: int) -> None:
        self.shm = shm
        self.generation = generation
        self.nbytes = nbytes
        self._released = False

    @property
    def name(self) -> str:
        """The segment name workers pass to :func:`attach`."""
        return self.shm.name

    @classmethod
    def create(
        cls,
        tree,
        config: Optional[SimilarityConfig] = None,
        te_weight: float = 0.05,
        name: Optional[str] = None,
    ) -> "SharedSnapshotSegment":
        """Export ``tree``'s current snapshot into a fresh segment.

        Freezes the snapshot and its text matrix if the tree has not
        already (both are generation-memoized, so repeated exports of an
        unchanged tree only pay the memcpy).  ``config``/``te_weight``
        are stamped into the header so workers reconstruct the exact
        similarity setting without touching the tree.
        """
        ok, why = shm_available()
        if not ok:
            raise SnapshotSegmentError(f"shared-memory transport unavailable: {why}")
        from multiprocessing import shared_memory  # noqa: PLC0415

        np = kernels._numpy()
        snap = tree.snapshot()
        matrix = snap.text_matrix()
        arrays = _export_arrays(tree, snap, matrix)

        # Frozen kNNL sketches ride along so attached workers can serve
        # warm-floor and approx engines without re-running the
        # freeze-time build: one array quartet per memoized sketch plus
        # a header row carrying its key and scalar metadata.
        sketch_rows: List[Tuple] = []
        for key, sketch in snap._sketches.items():
            i = len(sketch_rows)
            arrays[f"sk{i}_floor_idx"] = np.frombuffer(
                memoryview(sketch.floor_idx), dtype=np.int64
            )
            arrays[f"sk{i}_floor_table"] = np.frombuffer(
                memoryview(sketch.floor_table), dtype=np.float64
            )
            arrays[f"sk{i}_curve_c"] = np.frombuffer(
                memoryview(sketch.curve_c), dtype=np.float64
            )
            arrays[f"sk{i}_curve_b"] = np.frombuffer(
                memoryview(sketch.curve_b), dtype=np.float64
            )
            arrays[f"sk{i}_obj_profile"] = np.frombuffer(
                memoryview(sketch.obj_profile), dtype=np.float64
            )
            arrays[f"sk{i}_row_objects"] = np.frombuffer(
                memoryview(sketch.row_objects), dtype=np.int64
            )
            arrays[f"sk{i}_lsh_sig"] = np.frombuffer(
                memoryview(sketch.lsh_sig), dtype=np.uint64
            )
            sketch_rows.append(
                (
                    key,
                    {
                        "kmax": sketch.kmax,
                        "budget": sketch.budget,
                        "pool": sketch.pool,
                        "sample_frac": sketch.sample_frac,
                        "curves_true": sketch.curves_true,
                        "frontier": sketch.frontier,
                        "build_seconds": sketch.build_seconds,
                    },
                )
            )

        offset = _ARRAY_REGION
        table: Dict[str, Tuple[int, str, int]] = {}
        for array_name, arr in arrays.items():
            offset = _align(offset)
            table[array_name] = (offset, arr.dtype.str, int(arr.shape[0]))
            offset += arr.nbytes

        cfg = config if config is not None else tree.dataset.config
        header = {
            "generation": snap.generation,
            "kind": snap.kind,
            "maxD": snap.maxD,
            "n_slots": snap.n_slots,
            "root_slots": tuple(int(r) for r in snap.root_slots),
            "kernel_backend": snap.kernel_backend,
            "n_rows": matrix.n_rows,
            "n_obj_rows": matrix.n_obj_rows,
            "sim_config": cfg,
            "te_weight": te_weight,
            "use_entropy_priority": tree.config.use_entropy_priority,
            "buffer_pages": tree.config.buffer_pages,
            "sketches": sketch_rows,
            "arrays": table,
        }
        header_bytes = pickle.dumps(header)
        header_start = _align(offset)
        total = header_start + len(header_bytes)

        if name is None:
            name = f"repro_snap_{os.getpid():x}_{os.urandom(4).hex()}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        try:
            buf = shm.buf
            buf[: len(SEGMENT_MAGIC)] = SEGMENT_MAGIC
            _write_word(buf, _OFF_GENERATION, snap.generation)
            _write_word(buf, _OFF_REFCOUNT, 1)
            _write_word(buf, _OFF_HEADER_START, header_start)
            _write_word(buf, _OFF_HEADER_LEN, len(header_bytes))
            for array_name, arr in arrays.items():
                start, dtype_str, length = table[array_name]
                dest = np.frombuffer(
                    buf, dtype=np.dtype(dtype_str), count=length, offset=start
                )
                dest[:] = arr
                del dest
            buf[header_start : header_start + len(header_bytes)] = header_bytes
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, snap.generation, total)

    def refcount(self) -> int:
        """Advisory attach count (creator holds one reference)."""
        return _read_word(self.shm.buf, _OFF_REFCOUNT)

    def describe(self) -> Dict[str, object]:
        """Summary counters for logs and benchmark reports."""
        return {
            "name": self.name,
            "generation": self.generation,
            "nbytes": self.nbytes,
            "refcount": self.refcount(),
        }

    def close(self) -> None:
        """Unmap the parent's view (workers keep theirs)."""
        if not self._released:
            _write_word(
                self.shm.buf, _OFF_REFCOUNT, self.refcount() - 1
            )
        self.shm.close()

    def unlink(self) -> None:
        """Remove the segment name; memory frees when the last view closes."""
        self.shm.unlink()

    def release(self) -> None:
        """Close and unlink (idempotent); the standard parent teardown."""
        if self._released:
            return
        self.close()
        self._released = True
        self.unlink()

    def __enter__(self) -> "SharedSnapshotSegment":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


_MISSING = object()

#: SharedMemory handles whose unmap was deferred because the caller
#: still held zero-copy views at close time (see AttachedIndex.close).
#: Drained at interpreter exit, when those views are collectable.
_DEFERRED_UNMAPS: List[object] = []


def _drain_deferred_unmaps() -> None:  # pragma: no cover - atexit path
    import contextlib
    import gc

    gc.collect()
    while _DEFERRED_UNMAPS:
        handle = _DEFERRED_UNMAPS.pop()
        with contextlib.suppress(BufferError, OSError):
            handle.close()


import atexit  # noqa: E402 — registered next to the list it drains

atexit.register(_drain_deferred_unmaps)


class _LazySeq:
    """List-like over ``n`` lazily built, cached elements.

    The attach-side representation of per-slot object forms: element
    ``i`` is materialized by ``build(i)`` on first access only, so a
    worker pays reconstruction cost for the slots its queries actually
    touch — the core of the per-worker RSS win.
    """

    __slots__ = ("_cache", "_build")

    def __init__(self, n: int, build) -> None:
        self._cache: List[object] = [_MISSING] * n
        self._build = build

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, i: int):
        value = self._cache[i]
        if value is _MISSING:
            value = self._build(i)
            self._cache[i] = value
        return value

    def materialized(self) -> int:
        """How many elements have been built (diagnostics)."""
        return sum(1 for v in self._cache if v is not _MISSING)


class AttachedTextMatrix(SnapshotTextMatrix):
    """Text matrix mapped from a segment: postings zero-copy, frozen
    rows lazy (same contract as :class:`SnapshotTextMatrix`)."""

    __slots__ = ()

    @classmethod
    def from_segment(cls, snap: "AttachedSnapshot", header, views) -> "AttachedTextMatrix":
        """Rebuild the matrix over segment-backed columns (no copies)."""
        matrix = cls.__new__(cls)
        matrix.generation = header["generation"]
        matrix.n_rows = header["n_rows"]
        matrix.n_obj_rows = header["n_obj_rows"]
        matrix.indptr = views.cast("cl_indptr", "q")
        matrix.insq = views.cast("tm_insq", "d")
        matrix.unsq = views.cast("tm_unsq", "d")
        matrix.obj_row = views.cast("tm_obj_row", "q")
        matrix.obj_nsq = views.cast("tm_obj_nsq", "d")
        matrix.backend = "numpy"

        cl_int = views.cast("cl_int", "q")
        cl_uni = views.cast("cl_uni", "q")
        matrix.int_frozen = _LazySeq(
            matrix.n_rows, lambda r: snap._frozen_vector(cl_int[r])
        )
        matrix.uni_frozen = _LazySeq(
            matrix.n_rows, lambda r: snap._frozen_vector(cl_uni[r])
        )
        obj_vecidx = views.cast("obj_vecidx", "q")
        obj_vec_rows = [v for v in obj_vecidx if v >= 0]
        matrix.obj_frozen = _LazySeq(
            matrix.n_obj_rows, lambda r: snap._frozen_vector(obj_vec_rows[r])
        )
        for family, attr in (
            ("int", "int_postings"),
            ("uni", "uni_postings"),
            ("obj", "obj_postings"),
        ):
            terms = views.np(f"tm_{family}_terms")
            indptr = views.np(f"tm_{family}_indptr")
            rows = views.np(f"tm_{family}_rows")
            weights = views.np(f"tm_{family}_weights")
            post = {
                int(tid): (
                    rows[indptr[i] : indptr[i + 1]],
                    weights[indptr[i] : indptr[i + 1]],
                )
                for i, tid in enumerate(terms)
            }
            setattr(matrix, attr, post)
        return matrix


class _SegmentViews:
    """Zero-copy accessors over one attached segment's array region."""

    def __init__(self, shm, table) -> None:
        self._shm = shm
        self._table = table
        self._np = kernels._numpy()

    def cast(self, name: str, code: str):
        """A ``memoryview`` cast — scalar indexing yields Python
        floats/ints, matching the :mod:`array`-backed snapshot exactly."""
        offset, _dtype, length = self._table[name]
        size = _DTYPE_SIZE[code] * length
        return self._shm.buf[offset : offset + size].cast(code)

    def np(self, name: str):
        """A numpy view over the same bytes (vectorized passes)."""
        np = self._np
        offset, dtype_str, length = self._table[name]
        return np.frombuffer(
            self._shm.buf, dtype=np.dtype(dtype_str), count=length, offset=offset
        )


class AttachedSnapshot(IndexSnapshot):
    """An :class:`IndexSnapshot` mapped in place from a shared segment.

    Scalar columns are ``memoryview`` casts (zero-copy, Python-scalar
    indexing), the ``np_*`` views are ``numpy.frombuffer`` over the same
    bytes, and the object-level sequences (``clusters``, ``obj_vec``,
    ``obj_frozen``) rebuild lazily per slot from the segment's
    deduplicated vector pool.  Engine memoization, collect plans, and
    the engine factories are inherited unchanged.
    """

    __slots__ = ("_views", "_seg_header", "_vec_cache", "_frozen_cache",
                 "_vec_indptr", "_vec_ids", "_vec_weights", "_vec_nsq")

    def __init__(self, header, views: _SegmentViews) -> None:
        IndexSnapshot.__init__(self)
        self._seg_header = header
        self.generation = header["generation"]
        self.kind = header["kind"]
        self.kernel_backend = header["kernel_backend"]
        self.n_slots = header["n_slots"]
        self.maxD = header["maxD"]
        self.root_slots = header["root_slots"]
        self._views = views
        for name, code in _SNAP_COLUMNS:
            setattr(self, name, views.cast(name, code))
        self.np_xlo = views.np("xlo")
        self.np_ylo = views.np("ylo")
        self.np_xhi = views.np("xhi")
        self.np_yhi = views.np("yhi")

        self._vec_indptr = views.cast("vec_indptr", "q")
        self._vec_ids = views.cast("vec_ids", "q")
        self._vec_weights = views.cast("vec_weights", "d")
        self._vec_nsq = views.cast("vec_nsq", "d")
        n_vecs = len(self._vec_nsq)
        self._vec_cache: List[object] = [_MISSING] * n_vecs
        self._frozen_cache: List[object] = [_MISSING] * n_vecs

        cl_indptr = views.cast("cl_indptr", "q")
        cl_int = views.cast("cl_int", "q")
        cl_uni = views.cast("cl_uni", "q")
        cl_docs = views.cast("cl_docs", "q")
        obj_vecidx = views.cast("obj_vecidx", "q")

        def build_clusters(slot: int):
            out = []
            for row in range(cl_indptr[slot], cl_indptr[slot + 1]):
                ivec = self._vector(cl_int[row])
                uvec = self._vector(cl_uni[row])
                iv = object.__new__(IntervalVector)
                iv.intersection = ivec
                iv.union = uvec
                iv.doc_count = cl_docs[row]
                out.append(
                    (
                        iv,
                        self._frozen_vector(cl_int[row]),
                        self._frozen_vector(cl_uni[row]),
                        ivec.norm_squared,
                        uvec.norm_squared,
                    )
                )
            return tuple(out)

        def build_obj_vec(slot: int):
            idx = obj_vecidx[slot]
            return None if idx < 0 else self._vector(idx)

        def build_obj_frozen(slot: int):
            idx = obj_vecidx[slot]
            return None if idx < 0 else self._frozen_vector(idx)

        self.clusters = _LazySeq(self.n_slots, build_clusters)
        self.obj_vec = _LazySeq(self.n_slots, build_obj_vec)
        self.obj_frozen = _LazySeq(self.n_slots, build_obj_frozen)

    # ------------------------------------------------------------------
    # Lazy reconstruction
    # ------------------------------------------------------------------

    def _vector(self, idx: int) -> SparseVector:
        """Pool vector ``idx`` as a real :class:`SparseVector` (cached).

        Rebuilt exactly like unpickling: slots assigned directly from
        the already-sorted id/weight columns and the parent's precomputed
        squared norm, frozen form left lazy.
        """
        vec = self._vec_cache[idx]
        if vec is _MISSING:
            lo, hi = self._vec_indptr[idx], self._vec_indptr[idx + 1]
            vec = SparseVector.__new__(SparseVector)
            vec._ids = tuple(self._vec_ids[lo:hi])
            vec._weights = tuple(self._vec_weights[lo:hi])
            vec._norm_sq = self._vec_nsq[idx]
            vec._frozen = None
            self._vec_cache[idx] = vec
        return vec

    def _frozen_vector(self, idx: int):
        """Pool vector ``idx``'s frozen kernel form (cached).

        Built through :func:`repro.perf.kernels.freeze` from the sorted
        columns, i.e. the identical construction order the parent used —
        the frozen-set iteration-order parity argument of the module
        docstring.
        """
        form = self._frozen_cache[idx]
        if form is _MISSING:
            vec = self._vector(idx)
            form = vec.frozen()
            self._frozen_cache[idx] = form
        return form

    def text_matrix(self) -> SnapshotTextMatrix:
        matrix = self._text_matrix
        if matrix is None:
            matrix = AttachedTextMatrix.from_segment(
                self, self._seg_header, self._views
            )
            self._text_matrix = matrix
        return matrix

    def materialized_slots(self) -> int:
        """Slots whose cluster tuples have been built (RSS diagnostics)."""
        return self.clusters.materialized()

    def nbytes(self) -> int:
        """Mapped bytes are shared; count only private lazily built state.

        The columnar arrays live in the segment (one copy machine-wide),
        so the snapshot-specific resident cost of an attached worker is
        the reconstructed vectors — reported here as an estimate from
        the materialized counts.
        """
        vec_bytes = 0
        for idx, vec in enumerate(self._vec_cache):
            if vec is not _MISSING:
                lo, hi = self._vec_indptr[idx], self._vec_indptr[idx + 1]
                vec_bytes += 64 + 16 * (hi - lo)
        return vec_bytes


class _ShmBufferMirror:
    """Cold LRU mirror of the parent's :class:`BufferPool` accounting.

    Charges the same page spans per record through a private
    :class:`~repro.storage.iostats.IOStats`, so worker-side ``SearchResult.io``
    dictionaries have the shape the rest of the system expects.  Record
    payloads are not shipped (the engines never read them), so ``get``
    returns ``b""``.
    """

    def __init__(self, io: IOStats, pages: Dict[int, int], capacity_pages: int) -> None:
        self.io = io
        self._pages = pages
        self.capacity_pages = capacity_pages
        self._cache: "OrderedDict[int, int]" = OrderedDict()
        self._pages_used = 0

    def get(self, record_id: int, tag: str = "") -> bytes:
        record_id = int(record_id)
        pages = self._pages.get(record_id, 1)
        if record_id in self._cache:
            self._cache.move_to_end(record_id)
            self.io.record_hit(pages)
            return b""
        self.io.record_read(pages, tag)
        if pages > self.capacity_pages:
            return b""  # oversized records are served uncached
        while self._pages_used + pages > self.capacity_pages and self._cache:
            _, evicted = self._cache.popitem(last=False)
            self._pages_used -= evicted
        self._cache[record_id] = pages
        self._pages_used += pages
        return b""

    def contains(self, record_id: int) -> bool:
        return int(record_id) in self._cache

    def clear(self) -> None:
        self._cache.clear()
        self._pages_used = 0


class _ShmStubTree:
    """The minimal tree facade the snapshot engines require.

    Provides exactly the surface :class:`~repro.core.traversal.SnapshotEngine`
    touches — ``buffer.get``, ``io.snapshot``, ``generation`` — backed
    by the segment's record page table instead of a live index.
    """

    def __init__(self, snap: AttachedSnapshot, header, views: _SegmentViews) -> None:
        self.kind = snap.kind
        self.generation = snap.generation
        self.io = IOStats()
        rpt_ids = views.cast("rpt_ids", "q")
        rpt_pages = views.cast("rpt_pages", "q")
        pages = dict(zip(rpt_ids, rpt_pages))
        self.buffer = _ShmBufferMirror(self.io, pages, header["buffer_pages"])

    def reset_io(self, cold: bool = True) -> None:
        self.io.reset()
        if cold:
            self.buffer.clear()


class ShmSearcher:
    """Worker-side searcher over one attached segment.

    The drop-in replacement for the pickle transport's
    :class:`~repro.core.rstknn.RSTkNNSearcher`: it runs the snapshot
    engine of the header's similarity setting (result ids and decision
    counters are engine-parity-identical to the seed walk, which the
    engine test suite enforces).
    """

    def __init__(self, attached: "AttachedIndex", config: Optional[SimilarityConfig],
                 te_weight: float, engine: str = "snapshot",
                 warm_floors: bool = False, approx_verify: bool = True,
                 approx_lsh: bool = True) -> None:
        header = attached.header
        cfg = config if config is not None else header["sim_config"]
        self.config = cfg
        self.measure = make_measure(cfg.text_measure)
        self.alpha = cfg.alpha
        self.te_weight = te_weight if header["use_entropy_priority"] else 0.0
        self.tree = attached.tree
        snapshot = attached.snapshot
        if engine == "approx":
            # Served from the segment's frozen sketch when the parent
            # exported one; rebuilt worker-side otherwise (memoized).
            self.engine = snapshot.approx_engine_for(
                attached.tree, self.measure, self.alpha, self.te_weight,
                verify=approx_verify, lsh=approx_lsh,
            )
        elif warm_floors:
            self.engine = snapshot.warm_engine_for(
                attached.tree, self.measure, self.alpha, self.te_weight
            )
        else:
            self.engine = snapshot.engine_for(
                attached.tree, self.measure, self.alpha, self.te_weight
            )

    def search(self, query, k: int):
        """Run one RSTkNN query on the attached snapshot engine."""
        return self.engine.search(query, k)


class AttachedIndex:
    """One worker's view of a segment: snapshot, stub tree, lifecycle."""

    def __init__(self, shm, header, views, snapshot, tree) -> None:
        self.shm = shm
        self.header = header
        self.generation = header["generation"]
        self._views = views
        self.snapshot = snapshot
        self.tree = tree
        self._closed = False

    def searcher(
        self,
        config: Optional[SimilarityConfig] = None,
        te_weight: Optional[float] = None,
        engine: str = "snapshot",
        warm_floors: bool = False,
        approx_verify: bool = True,
        approx_lsh: bool = True,
    ) -> ShmSearcher:
        """A searcher over this attachment (header defaults apply)."""
        te = self.header["te_weight"] if te_weight is None else te_weight
        return ShmSearcher(
            self, config, te,
            engine=engine, warm_floors=warm_floors,
            approx_verify=approx_verify, approx_lsh=approx_lsh,
        )

    def refcount(self) -> int:
        """Advisory reference count stored in the segment."""
        return _read_word(self.shm.buf, _OFF_REFCOUNT)

    def close(self) -> None:
        """Decrement the refcount and unmap this process's view.

        The attachment drops its own zero-copy views (memoryview casts,
        numpy buffers) and is unusable afterwards.  If the *caller*
        still holds live views — a searcher kept past the attachment,
        say — the unmap is deferred to process exit (CPython refuses to
        unmap a buffer with exported pointers); the refcount decrement
        happens either way, so diagnostics stay truthful.
        """
        if self._closed:
            return
        self._closed = True
        _write_word(self.shm.buf, _OFF_REFCOUNT, self.refcount() - 1)
        # Drop exported buffer views so SharedMemory.close() can unmap.
        self.snapshot = None
        self.tree = None
        self._views = None
        self.header = None
        import gc  # noqa: PLC0415 — collect dropped buffer exports

        gc.collect()
        try:
            self.shm.close()
        except BufferError:
            # Someone outside this handle still exports segment memory;
            # parking the handle keeps SharedMemory.__del__ from warning
            # and leaves the unmap to process teardown.  The segment
            # itself is unlinked by its creating process regardless.
            _DEFERRED_UNMAPS.append(self.shm)


def attach(name: str, expected_generation: Optional[int] = None) -> AttachedIndex:
    """Map a segment by name and build the worker-side index view.

    ``expected_generation`` is the generation the parent advertised when
    it shipped the name; a mismatch against the segment header raises
    :class:`StaleSegmentError` before any engine can run — defense in
    depth on top of the parent re-exporting after mutations.

    Resource-tracker note: attaching registers the name with the
    tracker again, but fork-started workers share the parent's tracker
    and its name set deduplicates, so the creator's single ``unlink``
    still unregisters exactly once — and if the creator dies without
    unlinking, the tracker reaps the segment at shutdown instead of
    leaking it.
    """
    ok, why = shm_available()
    if not ok:
        raise SnapshotSegmentError(f"shared-memory transport unavailable: {why}")
    from multiprocessing import shared_memory  # noqa: PLC0415

    shm = shared_memory.SharedMemory(name=name)
    try:
        magic = bytes(shm.buf[: len(SEGMENT_MAGIC)])
        if magic != SEGMENT_MAGIC:
            if magic.startswith(_MAGIC_PREFIX):
                # Right family, wrong layout version: written by a
                # different build (e.g. an RSTSHM02 parent feeding an
                # RSTSHM03 worker).  Stale, not foreign — the remedy is
                # re-exporting, same as a generation mismatch.
                raise StaleSegmentError(
                    f"segment {name!r} has layout version {magic!r}, "
                    f"this build reads {SEGMENT_MAGIC!r}; re-export the "
                    "snapshot with the current build"
                )
            raise SnapshotSegmentError(
                f"segment {name!r} is not a snapshot segment "
                f"(magic {magic!r})"
            )
        generation = _read_word(shm.buf, _OFF_GENERATION)
        if expected_generation is not None and generation != expected_generation:
            raise StaleSegmentError(
                f"segment {name!r} holds generation {generation}, "
                f"expected {expected_generation}; the index mutated after "
                "export and the segment must be re-created"
            )
        header_start = _read_word(shm.buf, _OFF_HEADER_START)
        header_len = _read_word(shm.buf, _OFF_HEADER_LEN)
        header = pickle.loads(
            bytes(shm.buf[header_start : header_start + header_len])
        )
        _write_word(shm.buf, _OFF_REFCOUNT, _read_word(shm.buf, _OFF_REFCOUNT) + 1)
        views = _SegmentViews(shm, header["arrays"])
        snapshot = AttachedSnapshot(header, views)
        for i, (key, meta) in enumerate(header.get("sketches", ())):
            from ..approx.sketch import KnnlSketch  # noqa: PLC0415

            snapshot._sketches[key] = KnnlSketch(
                kmax=meta["kmax"],
                budget=meta["budget"],
                pool=meta["pool"],
                frontier=meta["frontier"],
                floor_idx=views.cast(f"sk{i}_floor_idx", "q"),
                floor_table=views.cast(f"sk{i}_floor_table", "d"),
                curve_c=views.cast(f"sk{i}_curve_c", "d"),
                curve_b=views.cast(f"sk{i}_curve_b", "d"),
                obj_profile=views.cast(f"sk{i}_obj_profile", "d"),
                build_seconds=meta["build_seconds"],
                sample_frac=meta["sample_frac"],
                row_objects=views.cast(f"sk{i}_row_objects", "q"),
                lsh_sig=views.cast(f"sk{i}_lsh_sig", "Q"),
                curves_true=meta["curves_true"],
            )
        tree = _ShmStubTree(snapshot, header, views)
        return AttachedIndex(shm, header, views, snapshot, tree)
    except BaseException:
        shm.close()
        raise
