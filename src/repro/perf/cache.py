"""Size-bounded LRU caches for entry-pair similarity bounds.

The seed :class:`~repro.core.bounds.BoundComputer` memoized bounds in
per-query unbounded dicts, so every query rebuilt the same tree-pair
bounds from scratch and a long-lived searcher grew without limit.  This
module provides

* :class:`LRUCache` — a plain size-bounded mapping with hit/miss/eviction
  counters; and
* :class:`BoundCache` — the pair-bound cache a searcher (or batch engine)
  owns and shares across queries.  Blended ``(MinST, MaxST)`` pair
  bounds, textual interval bounds, and exact object-pair scores live in
  separate LRUs because their hit profiles differ: the blended bounds
  are the hottest (every kNN-bound tightening touches them), text bounds
  back them up under eviction pressure, exact scores only recur when the
  same object pair is re-verified.

Only *tree-resident* pairs are shared (both refs >= 0); pairs involving
a query entry (negative ref) stay in the bound computer's private
per-query memo, because query refs collide across queries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

from ..errors import ConfigError

#: Default total pair-bound capacity shared across queries.  Sized so a
#: mid-size workload's tree-pair working set (~100k pairs at |D|≈500)
#: fits without eviction churn; memory is only committed as entries
#: actually appear.
DEFAULT_BOUND_CACHE_ENTRIES = 262144

_MISSING = object()


@dataclass
class CacheStats:
    """Counters of one cache: lifetime traffic plus current occupancy."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 when never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict of the counters, for experiment logging."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A size-bounded mapping evicting the least recently used entry."""

    __slots__ = ("_data", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"LRUCache capacity must be >= 1, got {capacity}")
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``; counts hit or miss.

        Recency is only refreshed once the cache has filled up: while
        there is free capacity, insertion order is as good an eviction
        order as any and skipping ``move_to_end`` keeps the hot hit path
        to a single dict probe.
        """
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        data = self._data
        if len(data) >= self.capacity:
            data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self.capacity:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        self._data.clear()

    def stats(self) -> CacheStats:
        """A snapshot of the counters and occupancy."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._data),
            capacity=self.capacity,
        )


class BoundCache:
    """Shared pair-bound cache: blended, text-bound, and exact-score LRUs.

    Own one of these per tree (searcher, batch engine, or service) and
    pass it to every :class:`~repro.core.rstknn.RSTkNNSearcher` that
    queries the tree; entry-pair bounds computed by one query are then
    reused by every later query.  Invalidate with :meth:`clear` after
    index updates (node ids may be reused by splits).
    """

    __slots__ = ("pairs", "text", "exact")

    def __init__(self, capacity: int = DEFAULT_BOUND_CACHE_ENTRIES) -> None:
        if capacity < 2:
            raise ConfigError(f"BoundCache capacity must be >= 2, got {capacity}")
        # The blended (MinST, MaxST) bounds take the lion's share: one
        # hit there short-circuits the text *and* spatial recomputation.
        pair_capacity = max(1, capacity // 2)
        text_capacity = max(1, capacity // 4)
        self.pairs = LRUCache(pair_capacity)
        self.text = LRUCache(text_capacity)
        self.exact = LRUCache(max(1, capacity - pair_capacity - text_capacity))

    @property
    def capacity(self) -> int:
        """Total entry budget across the three LRUs."""
        return self.pairs.capacity + self.text.capacity + self.exact.capacity

    def clear(self) -> None:
        """Drop all shared bounds (call after index updates)."""
        self.pairs.clear()
        self.text.clear()
        self.exact.clear()

    def stats(self) -> CacheStats:
        """Combined counters over the three LRUs."""
        return CacheStats(
            hits=self.pairs.hits + self.text.hits + self.exact.hits,
            misses=self.pairs.misses + self.text.misses + self.exact.misses,
            evictions=self.pairs.evictions
            + self.text.evictions
            + self.exact.evictions,
            entries=len(self.pairs) + len(self.text) + len(self.exact),
            capacity=self.capacity,
        )

    def publish(self, metrics, prefix: str = "cache") -> None:
        """Mirror the combined counters into a metrics registry.

        Sets one ``<prefix>.<counter>`` gauge per :meth:`CacheStats.as_dict`
        key (gauges, not counters, because the stats are lifetime totals
        — repeated publishes stay idempotent).  ``metrics`` is a
        :class:`repro.obs.MetricsRegistry`; ``None`` is a no-op.
        """
        if metrics is None:
            return
        for key, value in self.stats().as_dict().items():
            metrics.gauge(f"{prefix}.{key}").set(value)
