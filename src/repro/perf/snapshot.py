"""Columnar index snapshots: a frozen struct-of-arrays view of a tree.

The seed traversal walks per-node Python objects: every bound evaluated
during search chases ``Node -> Entry -> IntervalVector -> SparseVector``
pointers and re-derives frozen kernel forms through attribute lookups.
An :class:`IndexSnapshot` freezes a built
:class:`~repro.index.iurtree.IURTree` / ``CIURTree`` into flat parallel
arrays indexed by *slot*:

* child MBRs packed into flat float arrays (numpy views when numpy is
  importable, plain :mod:`array` storage always);
* parent/child topology as integer offset tables — the children of a
  directory slot ``s`` are exactly ``range(first_child[s],
  last_child[s])``, contiguous by construction;
* per-node textual summaries pre-frozen into the PR-1 kernel forms
  (64-bit term signatures included) with their squared norms unpacked,
  so the Extended Jaccard bound arithmetic never touches a
  ``SparseVector`` during traversal;
* per-slot cluster-entropy priorities precomputed for the TE boost; and
* lazily memoized *collect plans* — the exact object-id enumeration and
  page-charge sequence the seed's accept-phase subtree walk performs.

Slot layout: slot 0 is the synthesized root summary (when the tree
proper is non-empty), followed by one slot per OE outlier, followed by
every node entry in level order (children of earlier slots first).  The
slots therefore correspond one-to-one to the ``(ref, is_object)`` keys
the seed searcher reasons about.

Snapshots are immutable and generation-tagged: they are built via
:meth:`IURTree.snapshot`, which memoizes per structural
:attr:`~repro.index.iurtree.IURTree.generation`, so index updates
invalidate them automatically.  A snapshot holds no reference to the
buffer pool — the traversal engine charges I/O through the live tree so
page accounting stays identical to the seed engine.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..text.entropy import normalized_cluster_entropy
from . import kernels


class IndexSnapshot:
    """Immutable struct-of-arrays form of one (C)IUR-tree generation."""

    __slots__ = (
        "generation",
        "kernel_backend",
        "kind",
        "n_slots",
        "maxD",
        "xlo",
        "ylo",
        "xhi",
        "yhi",
        "np_xlo",
        "np_ylo",
        "np_xhi",
        "np_yhi",
        "cnt",
        "ref",
        "first_child",
        "last_child",
        "record_id",
        "is_obj",
        "clusters",
        "ent_root",
        "ent_child",
        "obj_vec",
        "obj_frozen",
        "root_slots",
        "_collect_plans",
        "_engines",
        "_sketches",
        "_text_matrix",
    )

    def __init__(self) -> None:
        self.generation = 0
        self.kernel_backend = kernels.backend_name()
        self.kind = "iur"
        self.n_slots = 0
        self.maxD = 1.0
        self.xlo = array("d")
        self.ylo = array("d")
        self.xhi = array("d")
        self.yhi = array("d")
        self.np_xlo = None
        self.np_ylo = None
        self.np_xhi = None
        self.np_yhi = None
        self.cnt = array("q")
        self.ref = array("q")
        self.first_child = array("q")
        self.last_child = array("q")
        self.record_id = array("q")
        self.is_obj = bytearray()
        self.clusters: List[Tuple] = []
        self.ent_root = array("d")
        self.ent_child = array("d")
        self.obj_vec: List = []
        self.obj_frozen: List = []
        self.root_slots: Tuple[int, ...] = ()
        self._collect_plans: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        self._engines: Dict[Tuple, object] = {}
        self._sketches: Dict[Tuple, object] = {}
        self._text_matrix: Optional["SnapshotTextMatrix"] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tree(cls, tree) -> "IndexSnapshot":
        """Freeze the current generation of ``tree`` into columnar form.

        Reads node structure directly (no simulated I/O is charged); the
        live tree's record ids are captured so the traversal engine can
        replay the seed's exact page-charge sequence at query time.
        """
        snap = cls()
        snap.generation = tree.generation
        snap.kind = tree.kind
        snap.maxD = tree.dataset.proximity.max_distance

        rtree = tree.rtree
        record_ids = tree._record_ids
        entries: List = []
        first: List[int] = []
        last: List[int] = []
        queue: deque = deque()

        def add(entry) -> int:
            slot = len(entries)
            entries.append(entry)
            first.append(0)
            last.append(0)
            if not entry.is_object:
                queue.append(slot)
            return slot

        root_slots: List[int] = []
        root_entry = tree.root_entry()
        if root_entry is not None:
            root_slots.append(add(root_entry))
        for outlier in tree.outlier_entries():
            root_slots.append(add(outlier))
        # Level-order expansion keeps every node's children contiguous.
        while queue:
            slot = queue.popleft()
            node = rtree.node(entries[slot].ref)
            first[slot] = len(entries)
            for child in node.entries:
                add(child)
            last[slot] = len(entries)
        snap.root_slots = tuple(root_slots)
        snap.n_slots = len(entries)

        nc_child = max(max(tree.num_clusters(), 1), 2)
        for slot, entry in enumerate(entries):
            mbr = entry.mbr
            snap.xlo.append(mbr.xlo)
            snap.ylo.append(mbr.ylo)
            snap.xhi.append(mbr.xhi)
            snap.yhi.append(mbr.yhi)
            snap.cnt.append(entry.count)
            snap.ref.append(entry.ref)
            snap.is_obj.append(1 if entry.is_object else 0)
            snap.first_child.append(first[slot])
            snap.last_child.append(last[slot])
            if entry.is_object:
                snap.record_id.append(-1)
                snap.ent_root.append(0.0)
                snap.ent_child.append(0.0)
                vec = entry.exact_vector()
                snap.obj_vec.append(vec)
                snap.obj_frozen.append(vec.frozen())
            else:
                snap.record_id.append(record_ids.get(entry.ref, -1))
                hist = {
                    cid: iv.doc_count for cid, iv in entry.clusters.items()
                }
                # Two normalizations because the seed priority call sites
                # differ: roots use the default single-cluster divisor,
                # children the tree-wide cluster count.
                snap.ent_root.append(normalized_cluster_entropy(hist, 2))
                snap.ent_child.append(normalized_cluster_entropy(hist, nc_child))
                snap.obj_vec.append(None)
                snap.obj_frozen.append(None)
            snap.clusters.append(
                tuple(
                    (
                        iv,
                        iv.intersection.frozen(),
                        iv.union.frozen(),
                        iv.intersection.norm_squared,
                        iv.union.norm_squared,
                    )
                    for iv in entry.clusters.values()
                )
            )

        np = kernels._numpy()
        if np is not None and snap.n_slots:
            snap.np_xlo = np.frombuffer(snap.xlo, dtype=np.float64)
            snap.np_ylo = np.frombuffer(snap.ylo, dtype=np.float64)
            snap.np_xhi = np.frombuffer(snap.xhi, dtype=np.float64)
            snap.np_yhi = np.frombuffer(snap.yhi, dtype=np.float64)
        return snap

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------

    def collect_plan(
        self, slot: int
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """``(page charges, object ids)`` of the accept-phase subtree walk.

        Replays the seed's ``_collect`` stack traversal over the offset
        tables once per slot and memoizes: the page-charge order and the
        id enumeration order are byte-for-byte the sequences the seed
        engine produces for the same accepted entry.
        """
        plan = self._collect_plans.get(slot)
        if plan is None:
            charges: List[int] = []
            ids: List[int] = []
            stack = [slot]
            is_obj = self.is_obj
            ref = self.ref
            while stack:
                s = stack.pop()
                if is_obj[s]:
                    ids.append(ref[s])
                else:
                    charges.append(self.record_id[s])
                    stack.extend(range(self.first_child[s], self.last_child[s]))
            plan = (tuple(charges), tuple(ids))
            self._collect_plans[slot] = plan
        return plan

    def text_matrix(self) -> "SnapshotTextMatrix":
        """The columnar text-summary matrix of this snapshot (lazy).

        Built once per snapshot and cached on it — because snapshots are
        memoized per tree :attr:`generation`, any index mutation rebuilds
        the snapshot and therefore this matrix too; a fused run can never
        observe postings from a previous generation.
        """
        matrix = self._text_matrix
        if matrix is None:
            matrix = SnapshotTextMatrix.from_snapshot(self)
            self._text_matrix = matrix
        return matrix

    def engine_for(self, tree, measure, alpha: float, te_weight: float):
        """The memoized traversal engine for one similarity setting.

        Engines own the snapshot-resident pair-bound memo, whose values
        depend on ``(measure, alpha)`` — each distinct setting gets its
        own engine so memos can never mix.
        """
        key = (measure.name, alpha, te_weight)
        engine = self._engines.get(key)
        if engine is None:
            from ..core.traversal import SnapshotEngine

            engine = SnapshotEngine(tree, self, measure, alpha, te_weight)
            self._engines[key] = engine
        return engine

    def fused_engine_for(self, tree, measure, alpha: float, te_weight: float):
        """The memoized fused group engine for one similarity setting.

        The fused engine wraps (and shares the pair memo of) the
        per-query :meth:`engine_for` engine with the same key, so the two
        always agree on every cached bound value.
        """
        key = ("fused", measure.name, alpha, te_weight)
        engine = self._engines.get(key)
        if engine is None:
            from ..core.fused import FusedBatchEngine

            engine = FusedBatchEngine(tree, self, measure, alpha, te_weight)
            self._engines[key] = engine
        return engine

    def sketch_for(
        self,
        engine,
        kmax: Optional[int] = None,
        budget: Optional[int] = None,
        pool: Optional[int] = None,
        sample_frac: Optional[float] = None,
    ):
        """The memoized :class:`~repro.approx.sketch.KnnlSketch` of one
        exact engine's similarity setting (built on first request).

        Sketches depend on the same ``(measure, alpha)`` values the pair
        memo does, so they key on the engine's setting plus the sketch
        knobs; an attached shared-memory snapshot pre-populates this
        table from the segment instead of rebuilding.
        """
        from ..approx.sketch import (
            DEFAULT_SKETCH_BUDGET,
            DEFAULT_SKETCH_KMAX,
            DEFAULT_SKETCH_POOL,
            DEFAULT_SKETCH_SAMPLE_FRAC,
            build_sketch,
        )

        kmax = DEFAULT_SKETCH_KMAX if kmax is None else kmax
        budget = DEFAULT_SKETCH_BUDGET if budget is None else budget
        pool = DEFAULT_SKETCH_POOL if pool is None else pool
        if sample_frac is None:
            sample_frac = DEFAULT_SKETCH_SAMPLE_FRAC
        key = (
            engine.measure.name, engine.alpha, engine.te_weight,
            kmax, budget, pool, sample_frac,
        )
        sketch = self._sketches.get(key)
        if sketch is None:
            sketch = build_sketch(
                engine, kmax=kmax, budget=budget, pool=pool,
                sample_frac=sample_frac,
            )
            self._sketches[key] = sketch
        return sketch

    def warm_engine_for(
        self,
        tree,
        measure,
        alpha: float,
        te_weight: float,
        kmax: Optional[int] = None,
        budget: Optional[int] = None,
        pool: Optional[int] = None,
        sample_frac: Optional[float] = None,
    ):
        """A traversal engine seeded with frozen kNNL warm-start floors.

        Separate from :meth:`engine_for` (floor pruning changes decision
        *counters*, though never result ids, so the parity engine stays
        pristine) but sharing its pair-bound memo — work done by either
        engine warms the other.
        """
        key = (
            "floors", measure.name, alpha, te_weight,
            kmax, budget, pool, sample_frac,
        )
        engine = self._engines.get(key)
        if engine is None:
            from ..core.traversal import SnapshotEngine

            base = self.engine_for(tree, measure, alpha, te_weight)
            sketch = self.sketch_for(
                base, kmax=kmax, budget=budget, pool=pool,
                sample_frac=sample_frac,
            )
            engine = SnapshotEngine(
                tree, self, measure, alpha, te_weight, floors=sketch
            )
            engine._memo = base._memo
            self._engines[key] = engine
        return engine

    def warm_fused_engine_for(
        self,
        tree,
        measure,
        alpha: float,
        te_weight: float,
        kmax: Optional[int] = None,
        budget: Optional[int] = None,
        pool: Optional[int] = None,
        sample_frac: Optional[float] = None,
    ):
        """The fused group engine with warm-start floors (see
        :meth:`warm_engine_for` for the memo-sharing contract)."""
        key = (
            "fused-floors", measure.name, alpha, te_weight,
            kmax, budget, pool, sample_frac,
        )
        engine = self._engines.get(key)
        if engine is None:
            from ..core.fused import FusedBatchEngine

            base = self.engine_for(tree, measure, alpha, te_weight)
            sketch = self.sketch_for(
                base, kmax=kmax, budget=budget, pool=pool,
                sample_frac=sample_frac,
            )
            engine = FusedBatchEngine(
                tree, self, measure, alpha, te_weight, floors=sketch
            )
            self._engines[key] = engine
        return engine

    def approx_engine_for(
        self,
        tree,
        measure,
        alpha: float,
        te_weight: float,
        verify: bool = True,
        kmax: Optional[int] = None,
        budget: Optional[int] = None,
        pool: Optional[int] = None,
        sample_frac: Optional[float] = None,
        lsh: bool = True,
    ):
        """The memoized sketch-filter engine
        (:class:`~repro.approx.engine.ApproxEngine`) for one setting.

        ``lsh`` arms the engine's LSH pre-filter stage (candidate
        refutation by exact probes against band-bucket competitors).
        Verified-mode ids are unaffected — the stage only refutes
        provable non-members before the full probe; in raw mode it
        shrinks the conservative candidate set (higher precision,
        recall still 1.0).
        """
        key = (
            "approx", measure.name, alpha, te_weight, verify,
            kmax, budget, pool, sample_frac, lsh,
        )
        engine = self._engines.get(key)
        if engine is None:
            from ..approx.engine import ApproxEngine

            base = self.engine_for(tree, measure, alpha, te_weight)
            sketch = self.sketch_for(
                base, kmax=kmax, budget=budget, pool=pool,
                sample_frac=sample_frac,
            )
            engine = ApproxEngine(
                tree, self, measure, alpha, te_weight, sketch,
                verify=verify, lsh=lsh,
            )
            self._engines[key] = engine
        return engine

    def nbytes(self) -> int:
        """Approximate resident size of the columnar arrays (bytes).

        Counts the flat arrays and offset tables only — the frozen text
        forms are shared with the tree's own vectors, so they add no
        snapshot-specific cost beyond the per-slot reference tuples.
        """
        total = len(self.is_obj)
        for arr in (
            self.xlo,
            self.ylo,
            self.xhi,
            self.yhi,
            self.cnt,
            self.ref,
            self.first_child,
            self.last_child,
            self.record_id,
            self.ent_root,
            self.ent_child,
        ):
            total += arr.buffer_info()[1] * arr.itemsize
        return total

    def describe(self) -> Dict[str, float]:
        """Summary counters for logs and docs."""
        return {
            "generation": self.generation,
            "slots": self.n_slots,
            "objects": sum(self.is_obj),
            "roots": len(self.root_slots),
            "columnar_bytes": self.nbytes(),
            "kernel_backend": self.kernel_backend,
        }


class SnapshotTextMatrix:
    """Term-aligned columnar view of every text summary in a snapshot.

    Rows come in two families, both laid out in slot order:

    * **cluster rows** — one per ``(slot, cluster)`` pair, holding the
      squared norms and frozen forms of the cluster's intersection and
      union summaries; the rows of slot ``s`` are exactly
      ``range(indptr[s], indptr[s + 1])``, in the same order the scalar
      engine iterates ``snap.clusters[s]``;
    * **object rows** — one per object slot (``obj_row[s]``, ``-1`` for
      directory slots), holding the object vector's squared norm and
      frozen form.

    The term axis is inverted into *postings*: ``term_id -> (rows,
    weights)`` maps for the intersection, union, and object families.
    A whole group's query-vs-row dot products then evaluate as one
    sparse accumulation per query
    (:func:`repro.perf.kernels.group_text_dots`) instead of per
    ``(query, node)`` frozen-set intersections.

    The matrix is reached through :meth:`IndexSnapshot.text_matrix` and
    inherits the snapshot's staleness story: it is cached on the
    snapshot, and snapshots are memoized per tree generation, so index
    mutations can never leak stale postings into a fused run.
    """

    __slots__ = (
        "generation",
        "n_rows",
        "n_obj_rows",
        "indptr",
        "insq",
        "unsq",
        "int_frozen",
        "uni_frozen",
        "int_postings",
        "uni_postings",
        "obj_row",
        "obj_nsq",
        "obj_frozen",
        "obj_postings",
        "backend",
    )

    def __init__(self) -> None:
        self.generation = 0
        self.n_rows = 0
        self.n_obj_rows = 0
        self.indptr: List[int] = [0]
        self.insq: List[float] = []
        self.unsq: List[float] = []
        self.int_frozen: List = []
        self.uni_frozen: List = []
        self.int_postings: Dict[int, Tuple] = {}
        self.uni_postings: Dict[int, Tuple] = {}
        self.obj_row: List[int] = []
        self.obj_nsq: List[float] = []
        self.obj_frozen: List = []
        self.obj_postings: Dict[int, Tuple] = {}
        self.backend = "python"

    @classmethod
    def from_snapshot(cls, snap: IndexSnapshot) -> "SnapshotTextMatrix":
        """Invert one snapshot's summaries into postings form."""
        matrix = cls()
        matrix.generation = snap.generation
        int_post: Dict[int, Tuple[List[int], List[float]]] = {}
        uni_post: Dict[int, Tuple[List[int], List[float]]] = {}
        obj_post: Dict[int, Tuple[List[int], List[float]]] = {}

        def post(table, tid, row, weight):
            cell = table.get(tid)
            if cell is None:
                cell = ([], [])
                table[tid] = cell
            cell[0].append(row)
            cell[1].append(weight)

        row = 0
        for slot in range(snap.n_slots):
            for iv, int_f, uni_f, insq, unsq in snap.clusters[slot]:
                matrix.insq.append(insq)
                matrix.unsq.append(unsq)
                matrix.int_frozen.append(int_f)
                matrix.uni_frozen.append(uni_f)
                for tid, weight in iv.intersection.items():
                    post(int_post, tid, row, weight)
                for tid, weight in iv.union.items():
                    post(uni_post, tid, row, weight)
                row += 1
            matrix.indptr.append(row)
            vec = snap.obj_vec[slot]
            if vec is None:
                matrix.obj_row.append(-1)
            else:
                orow = len(matrix.obj_nsq)
                matrix.obj_row.append(orow)
                matrix.obj_nsq.append(vec.norm_squared)
                matrix.obj_frozen.append(snap.obj_frozen[slot])
                for tid, weight in vec.items():
                    post(obj_post, tid, orow, weight)
        matrix.n_rows = row
        matrix.n_obj_rows = len(matrix.obj_nsq)

        np = kernels._numpy()
        if np is not None:
            matrix.backend = "numpy"

            def pack(table):
                return {
                    tid: (
                        np.asarray(rows, dtype=np.intp),
                        np.asarray(weights, dtype=np.float64),
                    )
                    for tid, (rows, weights) in table.items()
                }

            matrix.int_postings = pack(int_post)
            matrix.uni_postings = pack(uni_post)
            matrix.obj_postings = pack(obj_post)
        else:
            matrix.int_postings = int_post
            matrix.uni_postings = uni_post
            matrix.obj_postings = obj_post
        return matrix

    def describe(self) -> Dict[str, float]:
        """Summary counters for logs and docs."""
        return {
            "generation": self.generation,
            "cluster_rows": self.n_rows,
            "object_rows": self.n_obj_rows,
            "intersection_terms": len(self.int_postings),
            "union_terms": len(self.uni_postings),
            "object_terms": len(self.obj_postings),
            "backend": self.backend,
        }
