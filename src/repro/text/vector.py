"""Sparse weighted term vectors.

A :class:`SparseVector` is an immutable mapping ``term_id -> weight > 0``
stored as parallel sorted tuples, which keeps hashing/equality cheap for
tests.  The pairwise reductions (``dot``, ``sum_min``, ``sum_max``,
``overlap_count``) delegate to :mod:`repro.perf.kernels` over a lazily
built *frozen* form cached on the vector, so repeated similarity
evaluations — the branch-and-bound hot path — avoid per-call Python
merge loops.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from ..errors import DatasetError
from ..perf import kernels


class SparseVector:
    """Immutable sparse vector over integer term ids.

    Weights must be strictly positive — a zero weight is represented by
    absence, which every bound derivation in :mod:`repro.text.similarity`
    relies on.
    """

    __slots__ = ("_ids", "_weights", "_norm_sq", "_frozen")

    def __init__(self, weights: Mapping[int, float]) -> None:
        items = sorted(weights.items())
        for tid, w in items:
            if w <= 0.0:
                raise DatasetError(
                    f"SparseVector weights must be > 0; term {tid} has {w}"
                )
            if tid < 0:
                raise DatasetError(f"term ids must be >= 0; got {tid}")
        self._ids: Tuple[int, ...] = tuple(tid for tid, _ in items)
        self._weights: Tuple[float, ...] = tuple(w for _, w in items)
        self._norm_sq: float = sum(w * w for w in self._weights)
        self._frozen = None

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------

    @staticmethod
    def empty() -> "SparseVector":
        """The zero vector."""
        return SparseVector({})

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __contains__(self, tid: int) -> bool:
        return self.get(tid) > 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._ids == other._ids and self._weights == other._weights

    def __hash__(self) -> int:
        return hash((self._ids, self._weights))

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{w:.3g}" for t, w in self.items())
        return f"SparseVector({{{inner}}})"

    def __getstate__(self) -> Tuple[Tuple[int, ...], Tuple[float, ...], float]:
        # The frozen form is a per-process cache; rebuild after unpickling
        # (it may hold numpy arrays, and the receiving process may run a
        # different kernel backend).
        return (self._ids, self._weights, self._norm_sq)

    def __setstate__(
        self, state: Tuple[Tuple[int, ...], Tuple[float, ...], float]
    ) -> None:
        self._ids, self._weights, self._norm_sq = state
        self._frozen = None

    def frozen(self):
        """The active kernel backend's frozen form (built once, cached)."""
        fz = self._frozen
        if fz is None or not kernels.is_current(fz):
            fz = kernels.freeze(self._ids, self._weights, self._norm_sq)
            self._frozen = fz
        return fz

    def get(self, tid: int) -> float:
        """Weight of ``tid`` (0 when absent); binary search."""
        ids = self._ids
        lo, hi = 0, len(ids)
        while lo < hi:
            mid = (lo + hi) // 2
            if ids[mid] < tid:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(ids) and ids[lo] == tid:
            return self._weights[lo]
        return 0.0

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate (term_id, weight) pairs in term order."""
        return zip(self._ids, self._weights)

    def term_ids(self) -> Tuple[int, ...]:
        """The sorted term ids."""
        return self._ids

    def to_dict(self) -> Dict[int, float]:
        """A plain {term_id: weight} copy."""
        return dict(self.items())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    @property
    def norm_squared(self) -> float:
        """``|v|^2`` (precomputed)."""
        return self._norm_sq

    @property
    def norm(self) -> float:
        """``|v|`` (from the precomputed squared norm)."""
        return math.sqrt(self._norm_sq)

    def dot(self, other: "SparseVector") -> float:
        """Sparse dot product (kernel over frozen forms)."""
        return self.frozen().dot(other.frozen())

    def ext_jaccard(self, other: "SparseVector") -> float:
        """Extended Jaccard ``<a,b> / (|a|² + |b|² − <a,b>)``, fused.

        One kernel call instead of a dot product plus norm arithmetic —
        the exact-score hot path of the paper's default measure.
        """
        return self.frozen().ext_jaccard(other.frozen())

    def sum_min(self, other: "SparseVector") -> float:
        """``Σ_t min(self[t], other[t])`` — only shared terms contribute."""
        return self.frozen().sum_min(other.frozen())

    def sum_max(self, other: "SparseVector") -> float:
        """``Σ_t max(self[t], other[t])`` over the union of terms."""
        return self.frozen().sum_max(other.frozen())

    def weight_sum(self) -> float:
        """``Σ_t self[t]`` (precomputed at freeze time)."""
        return self.frozen().wsum

    def overlap_count(self, other: "SparseVector") -> int:
        """Number of shared terms."""
        return self.frozen().overlap_count(other.frozen())

    def normalized(self) -> "SparseVector":
        """Unit-length copy (clustering uses cosine geometry)."""
        n = self.norm
        if n == 0.0:
            return self
        return SparseVector({t: w / n for t, w in self.items()})

    def scaled(self, factor: float) -> "SparseVector":
        """A copy with every weight multiplied by ``factor > 0``."""
        if factor <= 0.0:
            raise DatasetError(f"scale factor must be > 0, got {factor}")
        return SparseVector({t: w * factor for t, w in self.items()})

    @staticmethod
    def mean(vectors: Iterable["SparseVector"]) -> "SparseVector":
        """Arithmetic mean (used for k-means centroids)."""
        acc: Dict[int, float] = {}
        n = 0
        for v in vectors:
            n += 1
            for t, w in v.items():
                acc[t] = acc.get(t, 0.0) + w
        if n == 0:
            return SparseVector.empty()
        return SparseVector({t: w / n for t, w in acc.items() if w > 0.0})
