"""Sparse weighted term vectors.

A :class:`SparseVector` is an immutable mapping ``term_id -> weight > 0``
stored as parallel sorted tuples, which makes dot products a linear merge
and keeps hashing/equality cheap for tests.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from ..errors import DatasetError


class SparseVector:
    """Immutable sparse vector over integer term ids.

    Weights must be strictly positive — a zero weight is represented by
    absence, which every bound derivation in :mod:`repro.text.similarity`
    relies on.
    """

    __slots__ = ("_ids", "_weights", "_norm_sq")

    def __init__(self, weights: Mapping[int, float]) -> None:
        items = sorted(weights.items())
        for tid, w in items:
            if w <= 0.0:
                raise DatasetError(
                    f"SparseVector weights must be > 0; term {tid} has {w}"
                )
            if tid < 0:
                raise DatasetError(f"term ids must be >= 0; got {tid}")
        self._ids: Tuple[int, ...] = tuple(tid for tid, _ in items)
        self._weights: Tuple[float, ...] = tuple(w for _, w in items)
        self._norm_sq: float = sum(w * w for w in self._weights)

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------

    @staticmethod
    def empty() -> "SparseVector":
        """The zero vector."""
        return SparseVector({})

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __contains__(self, tid: int) -> bool:
        return self.get(tid) > 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._ids == other._ids and self._weights == other._weights

    def __hash__(self) -> int:
        return hash((self._ids, self._weights))

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{w:.3g}" for t, w in self.items())
        return f"SparseVector({{{inner}}})"

    def get(self, tid: int) -> float:
        """Weight of ``tid`` (0 when absent); binary search."""
        ids = self._ids
        lo, hi = 0, len(ids)
        while lo < hi:
            mid = (lo + hi) // 2
            if ids[mid] < tid:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(ids) and ids[lo] == tid:
            return self._weights[lo]
        return 0.0

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate (term_id, weight) pairs in term order."""
        return zip(self._ids, self._weights)

    def term_ids(self) -> Tuple[int, ...]:
        """The sorted term ids."""
        return self._ids

    def to_dict(self) -> Dict[int, float]:
        """A plain {term_id: weight} copy."""
        return dict(self.items())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    @property
    def norm_squared(self) -> float:
        """``|v|^2`` (precomputed)."""
        return self._norm_sq

    @property
    def norm(self) -> float:
        """``|v|`` (from the precomputed squared norm)."""
        return math.sqrt(self._norm_sq)

    def dot(self, other: "SparseVector") -> float:
        """Sparse dot product by sorted merge."""
        a_ids, a_w = self._ids, self._weights
        b_ids, b_w = other._ids, other._weights
        i = j = 0
        total = 0.0
        na, nb = len(a_ids), len(b_ids)
        while i < na and j < nb:
            ai, bj = a_ids[i], b_ids[j]
            if ai == bj:
                total += a_w[i] * b_w[j]
                i += 1
                j += 1
            elif ai < bj:
                i += 1
            else:
                j += 1
        return total

    def sum_min(self, other: "SparseVector") -> float:
        """``Σ_t min(self[t], other[t])`` — only shared terms contribute."""
        a_ids, a_w = self._ids, self._weights
        b_ids, b_w = other._ids, other._weights
        i = j = 0
        total = 0.0
        na, nb = len(a_ids), len(b_ids)
        while i < na and j < nb:
            ai, bj = a_ids[i], b_ids[j]
            if ai == bj:
                total += min(a_w[i], b_w[j])
                i += 1
                j += 1
            elif ai < bj:
                i += 1
            else:
                j += 1
        return total

    def sum_max(self, other: "SparseVector") -> float:
        """``Σ_t max(self[t], other[t])`` over the union of terms."""
        a_ids, a_w = self._ids, self._weights
        b_ids, b_w = other._ids, other._weights
        i = j = 0
        total = 0.0
        na, nb = len(a_ids), len(b_ids)
        while i < na and j < nb:
            ai, bj = a_ids[i], b_ids[j]
            if ai == bj:
                total += max(a_w[i], b_w[j])
                i += 1
                j += 1
            elif ai < bj:
                total += a_w[i]
                i += 1
            else:
                total += b_w[j]
                j += 1
        total += sum(a_w[i:])
        total += sum(b_w[j:])
        return total

    def weight_sum(self) -> float:
        """``Σ_t self[t]``."""
        return sum(self._weights)

    def overlap_count(self, other: "SparseVector") -> int:
        """Number of shared terms."""
        a_ids, b_ids = self._ids, other._ids
        i = j = 0
        count = 0
        na, nb = len(a_ids), len(b_ids)
        while i < na and j < nb:
            if a_ids[i] == b_ids[j]:
                count += 1
                i += 1
                j += 1
            elif a_ids[i] < b_ids[j]:
                i += 1
            else:
                j += 1
        return count

    def normalized(self) -> "SparseVector":
        """Unit-length copy (clustering uses cosine geometry)."""
        n = self.norm
        if n == 0.0:
            return self
        return SparseVector({t: w / n for t, w in self.items()})

    def scaled(self, factor: float) -> "SparseVector":
        """A copy with every weight multiplied by ``factor > 0``."""
        if factor <= 0.0:
            raise DatasetError(f"scale factor must be > 0, got {factor}")
        return SparseVector({t: w * factor for t, w in self.items()})

    @staticmethod
    def mean(vectors: Iterable["SparseVector"]) -> "SparseVector":
        """Arithmetic mean (used for k-means centroids)."""
        acc: Dict[int, float] = {}
        n = 0
        for v in vectors:
            n += 1
            for t, w in v.items():
                acc[t] = acc.get(t, 0.0) + w
        if n == 0:
            return SparseVector.empty()
        return SparseVector({t: w / n for t, w in acc.items() if w > 0.0})
