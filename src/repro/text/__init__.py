"""Text substrate: vocabularies, sparse vectors, weighting, similarity.

The IUR-tree family needs more than plain document similarity — it needs
*interval vectors* (per-term [min, max] weight summaries of a subtree) and
provable min/max similarity bounds between them.  Those live here too so
the index code stays purely structural.
"""

from .tokenize import tokenize
from .vocabulary import Vocabulary
from .vector import SparseVector
from .interval import IntervalVector
from .weighting import (
    WeightingScheme,
    TfWeighting,
    TfIdfWeighting,
    LanguageModelWeighting,
    BM25Weighting,
    make_weighting,
)
from .similarity import (
    TextMeasure,
    ExtendedJaccard,
    CosineMeasure,
    OverlapMeasure,
    DiceMeasure,
    WeightedJaccard,
    make_measure,
)
from .clustering import SphericalKMeans, ClusteringResult
from .entropy import cluster_entropy

__all__ = [
    "tokenize",
    "Vocabulary",
    "SparseVector",
    "IntervalVector",
    "WeightingScheme",
    "TfWeighting",
    "TfIdfWeighting",
    "LanguageModelWeighting",
    "BM25Weighting",
    "make_weighting",
    "TextMeasure",
    "ExtendedJaccard",
    "CosineMeasure",
    "OverlapMeasure",
    "DiceMeasure",
    "WeightedJaccard",
    "make_measure",
    "SphericalKMeans",
    "ClusteringResult",
    "cluster_entropy",
]
