"""A small, dependency-free tokenizer for object descriptions.

The datasets the paper uses (geographic names, POI descriptions) have
short, keyword-ish documents, so the tokenizer is deliberately simple:
lowercase, split on non-alphanumerics, drop pure punctuation and a tiny
stopword list, and optionally drop very short tokens.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A minimal English stopword list; enough to keep pseudo-documents from
#: being dominated by glue words in the synthetic corpora.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    """a an and are as at be by for from has he in is it its of on or that the
    to was were will with""".split()
)


def tokenize(
    text: str,
    min_length: int = 1,
    stopwords: FrozenSet[str] = DEFAULT_STOPWORDS,
) -> List[str]:
    """Split ``text`` into normalized terms.

    Args:
        text: Raw description.
        min_length: Drop tokens shorter than this many characters.
        stopwords: Terms to drop after lowercasing.

    Returns:
        The list of terms, in order and with duplicates preserved (term
        frequency matters to the weighting schemes).
    """
    out: List[str] = []
    for match in _TOKEN_RE.finditer(text.lower()):
        token = match.group(0)
        if len(token) < min_length:
            continue
        if token in stopwords:
            continue
        out.append(token)
    return out
