"""Spherical k-means over sparse text vectors.

The CIUR-tree groups documents by textual similarity so that per-cluster
interval vectors stay tight.  Spherical k-means (cosine geometry on unit
vectors) is the classic choice for text and is what we implement here —
deterministic given a seed, dependency-free, and robust to empty clusters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigError
from .vector import SparseVector


@dataclass
class ClusteringResult:
    """Assignment of documents to text clusters.

    Attributes:
        labels: ``labels[i]`` is the cluster id of document ``i``.
        centroids: Unit-normalized cluster centroids (may be fewer than
            requested when the corpus has fewer distinct documents).
        cohesion: ``cohesion[i]`` is the cosine of document ``i`` to its
            centroid — the outlier-extraction signal.
    """

    labels: List[int]
    centroids: List[SparseVector]
    cohesion: List[float]

    @property
    def num_clusters(self) -> int:
        """Number of centroids actually produced."""
        return len(self.centroids)

    def members(self, cluster: int) -> List[int]:
        """Document indices assigned to ``cluster``."""
        return [i for i, lab in enumerate(self.labels) if lab == cluster]


class SphericalKMeans:
    """k-means with cosine similarity on normalized vectors.

    Empty documents (no terms) are all assigned to cluster 0 with cohesion
    1.0 — they are textually identical to each other and carry no signal.
    """

    def __init__(self, k: int, max_iter: int = 25, seed: int = 7) -> None:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if max_iter < 1:
            raise ConfigError(f"max_iter must be >= 1, got {max_iter}")
        self.k = k
        self.max_iter = max_iter
        self.seed = seed

    def fit(self, vectors: Sequence[SparseVector]) -> ClusteringResult:
        """Cluster ``vectors`` and return labels, centroids, cohesion."""
        n = len(vectors)
        if n == 0:
            return ClusteringResult([], [], [])
        unit = [v.normalized() for v in vectors]
        k = min(self.k, n)
        if k == 1:
            centroid = SparseVector.mean(unit).normalized()
            cohesion = [u.dot(centroid) if u else 1.0 for u in unit]
            return ClusteringResult([0] * n, [centroid], cohesion)

        rng = random.Random(self.seed)
        centroids = self._seed_centroids(unit, k, rng)
        labels = [0] * n
        for _ in range(self.max_iter):
            changed = False
            for i, u in enumerate(unit):
                best = self._nearest(u, centroids)
                if best != labels[i]:
                    labels[i] = best
                    changed = True
            centroids = self._recompute(unit, labels, centroids, rng)
            if not changed:
                break
        cohesion = [
            unit[i].dot(centroids[labels[i]]) if unit[i] else 1.0 for i in range(n)
        ]
        return ClusteringResult(labels, centroids, cohesion)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _seed_centroids(
        self, unit: Sequence[SparseVector], k: int, rng: random.Random
    ) -> List[SparseVector]:
        """k-means++-style seeding on cosine distance."""
        first = rng.randrange(len(unit))
        centroids = [unit[first]]
        while len(centroids) < k:
            # Distance of each point to its nearest chosen centroid.
            dists = []
            for u in unit:
                best = max((u.dot(c) for c in centroids), default=0.0)
                dists.append(max(0.0, 1.0 - best))
            total = sum(dists)
            if total == 0.0:
                # All points identical to some centroid; pad with copies.
                centroids.append(unit[rng.randrange(len(unit))])
                continue
            pick = rng.random() * total
            acc = 0.0
            chosen = len(unit) - 1
            for i, d in enumerate(dists):
                acc += d
                if acc >= pick:
                    chosen = i
                    break
            centroids.append(unit[chosen])
        return centroids

    @staticmethod
    def _nearest(u: SparseVector, centroids: Sequence[SparseVector]) -> int:
        best_idx = 0
        best_sim = -1.0
        for idx, c in enumerate(centroids):
            sim = u.dot(c)
            if sim > best_sim:
                best_sim = sim
                best_idx = idx
        return best_idx

    @staticmethod
    def _recompute(
        unit: Sequence[SparseVector],
        labels: List[int],
        old: List[SparseVector],
        rng: random.Random,
    ) -> List[SparseVector]:
        groups: List[List[SparseVector]] = [[] for _ in old]
        for u, lab in zip(unit, labels):
            groups[lab].append(u)
        centroids: List[SparseVector] = []
        for gi, group in enumerate(groups):
            if not group:
                # Re-seed an empty cluster at a random point; keeps k stable.
                centroids.append(unit[rng.randrange(len(unit))])
                continue
            mean = SparseVector.mean(group).normalized()
            centroids.append(mean if mean else old[gi])
        return centroids
