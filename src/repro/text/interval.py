"""Interval vectors: the textual summaries carried by IUR-tree nodes.

An :class:`IntervalVector` summarizes a *set* of documents with, per term,

* a **union weight** ``uni[t]`` — the maximum weight of ``t`` over the
  documents that contain it (``t`` present iff *some* document has it); and
* an **intersection weight** ``int[t]`` — the minimum weight of ``t`` over
  the documents, where a term absent from *any* document has intersection
  weight 0 (and is stored as absent).

These are exactly the pseudo-document vectors of the IUR-tree: for every
summarized document ``d`` and term ``t``:

    int[t] <= d[t] <= uni[t]      (taking absent weights as 0)

The similarity-bound machinery in :mod:`repro.text.similarity` consumes
only interval vectors, so a concrete document is summarized exactly by the
degenerate interval ``int == uni == d``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import DatasetError
from .vector import SparseVector


class IntervalVector:
    """Immutable [min, max] per-term weight summary of a document set."""

    __slots__ = ("intersection", "union", "doc_count")

    def __init__(
        self, intersection: SparseVector, union: SparseVector, doc_count: int
    ) -> None:
        if doc_count < 1:
            raise DatasetError(f"IntervalVector needs doc_count >= 1, got {doc_count}")
        for tid, w in intersection.items():
            uw = union.get(tid)
            if uw < w:
                raise DatasetError(
                    f"intersection weight {w} exceeds union weight {uw} for term {tid}"
                )
        self.intersection = intersection
        self.union = union
        self.doc_count = doc_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalVector):
            return NotImplemented
        return (
            self.intersection == other.intersection
            and self.union == other.union
            and self.doc_count == other.doc_count
        )

    def __hash__(self) -> int:
        return hash((self.intersection, self.union, self.doc_count))

    def __repr__(self) -> str:
        return (
            f"IntervalVector(docs={self.doc_count}, "
            f"|int|={len(self.intersection)}, |uni|={len(self.union)})"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_document(vector: SparseVector) -> "IntervalVector":
        """The exact summary of a single document."""
        return IntervalVector(vector, vector, 1)

    @staticmethod
    def merge(parts: Iterable["IntervalVector"]) -> "IntervalVector":
        """Summary of the union of several summarized sets.

        Union weights take the per-term max; intersection weights take the
        per-term min *and* require the term to be present in every part's
        intersection (else some document lacks the term → weight 0).
        """
        part_list: List[IntervalVector] = list(parts)
        if not part_list:
            raise DatasetError("IntervalVector.merge requires at least one part")
        uni: Dict[int, float] = {}
        for part in part_list:
            for tid, w in part.union.items():
                if w > uni.get(tid, 0.0):
                    uni[tid] = w
        inter: Dict[int, float] = {}
        first = part_list[0]
        for tid, w in first.intersection.items():
            lo = w
            ok = True
            for part in part_list[1:]:
                pw = part.intersection.get(tid)
                if pw == 0.0:
                    ok = False
                    break
                lo = min(lo, pw)
            if ok:
                inter[tid] = lo
        total_docs = sum(p.doc_count for p in part_list)
        return IntervalVector(SparseVector(inter), SparseVector(uni), total_docs)

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------

    def admits(self, document: SparseVector) -> bool:
        """True when ``document`` is consistent with this summary.

        Every intersection term must appear in the document with at least
        the intersection weight, and every document term must appear in
        the union with at most the union weight.
        """
        for tid, lo in self.intersection.items():
            if document.get(tid) < lo:
                return False
        for tid, w in document.items():
            hi = self.union.get(tid)
            if hi < w:
                return False
        return True

    def size_in_terms(self) -> int:
        """Number of distinct terms stored (drives the page-size model)."""
        return len(self.union) + len(self.intersection)
