"""Text similarity measures with provable interval bounds.

Each measure implements three operations:

* ``similarity(a, b)`` — exact similarity of two concrete documents;
* ``min_similarity(A, B)`` — a value <= ``similarity(a, b)`` for *every*
  document pair ``a in A, b in B`` consistent with the interval summaries;
* ``max_similarity(A, B)`` — a value >= ``similarity(a, b)`` for every
  such pair.

The bound derivations are given inline; the property tests in
``tests/test_similarity_bounds.py`` check them against random subtree
contents.  The paper's default is the Extended Jaccard measure over TF-IDF
vectors; cosine and set-overlap are included for the measure-ablation
experiment (E9).

All similarities are in ``[0, 1]`` with the convention that a pair with no
shared terms — including empty documents — scores 0.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigError
from .interval import IntervalVector
from .vector import SparseVector


class TextMeasure(ABC):
    """Strategy interface for text similarity plus interval bounds."""

    #: Short name used in configs and experiment logs.
    name: str = "abstract"

    @abstractmethod
    def similarity(self, a: SparseVector, b: SparseVector) -> float:
        """Exact similarity of two documents, in [0, 1]."""

    @abstractmethod
    def min_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        """Lower bound over every consistent document pair."""

    @abstractmethod
    def max_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        """Upper bound over every consistent document pair."""


class ExtendedJaccard(TextMeasure):
    """Extended Jaccard: ``EJ(u, v) = <u,v> / (|u|^2 + |v|^2 - <u,v>)``.

    ``EJ`` is 1 iff ``u == v != 0`` and 0 when the vectors share no terms.
    Writing ``f(d, S) = d / (S - d)`` with ``d = <u,v>`` and
    ``S = |u|^2 + |v|^2``, ``f`` is increasing in ``d`` (for ``S`` fixed,
    ``d < S``) and decreasing in ``S`` — the bounds below follow by
    monotonicity.
    """

    name = "extended_jaccard"

    def similarity(self, a: SparseVector, b: SparseVector) -> float:
        # Fused kernel: dot, norms, and the disjoint fast path in one
        # call (denom >= d > 0 by Cauchy-Schwarz when terms are shared).
        return a.ext_jaccard(b)

    def min_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        # Every document pair has d >= d_min (both documents contain every
        # intersection term at >= intersection weight) and
        # S <= S_max = sum of squared union weights (documents are
        # term-wise dominated by their unions).  f(d, S) >= f(d_min, S_max).
        d_min = a.intersection.dot(b.intersection)
        if d_min == 0.0:
            return 0.0
        s_max = a.union.norm_squared + b.union.norm_squared
        return d_min / (s_max - d_min)

    def max_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        # d <= d_max (unions dominate) and S >= S_min (documents dominate
        # their intersections) *and* S >= 2 d for the realized pair
        # (Cauchy-Schwarz).  Maximizing f over that region:
        #   if 2 d_max >= S_min the pair could be identical -> bound 1;
        #   else the max is at d = d_max, S = S_min.
        d_max = a.union.dot(b.union)
        if d_max == 0.0:
            return 0.0
        s_min = a.intersection.norm_squared + b.intersection.norm_squared
        if 2.0 * d_max >= s_min:
            return 1.0
        return d_max / (s_min - d_max)


class CosineMeasure(TextMeasure):
    """Cosine similarity ``<u,v> / (|u| |v|)`` (0 when either is empty)."""

    name = "cosine"

    def similarity(self, a: SparseVector, b: SparseVector) -> float:
        d = a.dot(b)
        if d == 0.0:
            return 0.0
        return d / (a.norm * b.norm)

    def min_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        # cos = d / (|u| |v|) >= d_min / (|u| |v|) >= d_min / (U_a U_b)
        # where U_* are the union norms (which dominate document norms).
        d_min = a.intersection.dot(b.intersection)
        if d_min == 0.0:
            return 0.0
        denom = a.union.norm * b.union.norm
        # d_min > 0 implies both unions are non-empty, so denom > 0.
        return min(1.0, d_min / denom)

    def max_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        # cos <= d_max / (I_a I_b) with intersection norms I_* as document
        # norm lower bounds; when either intersection is empty nothing
        # bounds the norms from below and we fall back to the trivial 1.
        d_max = a.union.dot(b.union)
        if d_max == 0.0:
            return 0.0
        denom = a.intersection.norm * b.intersection.norm
        if denom == 0.0:
            return 1.0
        return min(1.0, d_max / denom)


class OverlapMeasure(TextMeasure):
    """Set Jaccard over term sets: ``|T(u) ∩ T(v)| / |T(u) ∪ T(v)|``.

    Weight-free, which models the "keyword overlap" style of relevance.
    """

    name = "overlap"

    def similarity(self, a: SparseVector, b: SparseVector) -> float:
        shared = a.overlap_count(b)
        if shared == 0:
            return 0.0
        union = len(a) + len(b) - shared
        return shared / union

    def min_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        # Write sim = s / (L1 + L2 - s) with s the shared-term count and
        # L1, L2 the document sizes; it is increasing in s and decreasing
        # in L1, L2.  Every pair has s >= s_min = |T(int_a) ∩ T(int_b)|
        # (documents carry all their intersection terms) and Li <= |uni|,
        # so the minimum is at (s_min, |uni_a|, |uni_b|).  Exact when both
        # summaries are degenerate single documents.
        s_min = a.intersection.overlap_count(b.intersection)
        if s_min == 0:
            return 0.0
        return s_min / (len(a.union) + len(b.union) - s_min)

    def max_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        # With s <= S = |T(uni_a) ∩ T(uni_b)|, Li >= |int| and Li >= s,
        # sim = s / (L1 + L2 - s) is maximized at s = S,
        # Li = max(|int_i|, S) (it is non-decreasing in s along that
        # frontier).  Exact for degenerate single-document summaries.
        s_max = a.union.overlap_count(b.union)
        if s_max == 0:
            return 0.0
        l1 = max(len(a.intersection), s_max)
        l2 = max(len(b.intersection), s_max)
        return s_max / (l1 + l2 - s_max)


class DiceMeasure(TextMeasure):
    """Dice coefficient on weighted vectors: ``2<u,v> / (|u|² + |v|²)``.

    Writing ``f(d, S) = 2d / S``, increasing in ``d`` and decreasing in
    ``S``; Cauchy–Schwarz gives ``2d <= S`` so the value stays in [0, 1].
    """

    name = "dice"

    def similarity(self, a: SparseVector, b: SparseVector) -> float:
        d = a.dot(b)
        if d == 0.0:
            return 0.0
        return 2.0 * d / (a.norm_squared + b.norm_squared)

    def min_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        d_min = a.intersection.dot(b.intersection)
        if d_min == 0.0:
            return 0.0
        return 2.0 * d_min / (a.union.norm_squared + b.union.norm_squared)

    def max_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        d_max = a.union.dot(b.union)
        if d_max == 0.0:
            return 0.0
        s_min = a.intersection.norm_squared + b.intersection.norm_squared
        if 2.0 * d_max >= s_min:
            return 1.0
        return 2.0 * d_max / s_min


class WeightedJaccard(TextMeasure):
    """Weighted (min/max) Jaccard: ``Σ min(u_t, v_t) / Σ max(u_t, v_t)``.

    The fuzzy-set generalization of Jaccard; equals set Jaccard on
    binary weights.  With ``N = Σ min`` and ``D = Σ max`` (``D >= N``):
    every pair has ``N >= sum_min(int_a, int_b)`` and
    ``D <= sum_max(uni_a, uni_b)`` (documents dominate intersections and
    are dominated by unions term-wise), giving the lower bound; the upper
    bound maximizes ``N / max(C, N)`` with
    ``C = sum_max(int_a, int_b) <= D`` at ``N = sum_min(uni_a, uni_b)``.
    """

    name = "weighted_jaccard"

    def similarity(self, a: SparseVector, b: SparseVector) -> float:
        numerator = a.sum_min(b)
        if numerator == 0.0:
            return 0.0
        return numerator / a.sum_max(b)

    def min_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        n_min = a.intersection.sum_min(b.intersection)
        if n_min == 0.0:
            return 0.0
        return n_min / a.union.sum_max(b.union)

    def max_similarity(self, a: IntervalVector, b: IntervalVector) -> float:
        n_max = a.union.sum_min(b.union)
        if n_max == 0.0:
            return 0.0
        c = a.intersection.sum_max(b.intersection)
        return n_max / max(c, n_max)


def make_measure(name: str) -> TextMeasure:
    """Factory mapping config names to measure instances."""
    if name == "extended_jaccard":
        return ExtendedJaccard()
    if name == "cosine":
        return CosineMeasure()
    if name == "overlap":
        return OverlapMeasure()
    if name == "dice":
        return DiceMeasure()
    if name == "weighted_jaccard":
        return WeightedJaccard()
    raise ConfigError(f"unknown text measure {name!r}")
