"""Term weighting schemes: raw TF, TF-IDF, and a smoothed language model.

A weighting scheme turns a raw term-frequency map into the weighted
:class:`~repro.text.vector.SparseVector` that similarity measures consume.
The paper's default corpus representation is TF-IDF with Extended Jaccard
similarity; LM weighting is provided for the measure-ablation experiment.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping

from ..errors import ConfigError
from .vector import SparseVector
from .vocabulary import Vocabulary


class WeightingScheme(ABC):
    """Strategy interface for converting term frequencies to weights."""

    #: Short name used in configs and experiment logs.
    name: str = "abstract"

    @abstractmethod
    def vector(self, tf: Mapping[int, int], vocab: Vocabulary) -> SparseVector:
        """Build a weighted vector from a ``{term_id: tf}`` map."""

    def weight(self, tid: int, tf: int, vocab: Vocabulary) -> float:
        """Weight of a single term occurrence count (for inspection)."""
        return self.vector({tid: tf}, vocab).get(tid)


class TfWeighting(WeightingScheme):
    """Raw term frequency."""

    name = "tf"

    def vector(self, tf: Mapping[int, int], vocab: Vocabulary) -> SparseVector:
        return SparseVector({tid: float(count) for tid, count in tf.items() if count > 0})


class TfIdfWeighting(WeightingScheme):
    """``tf * log(N / df)`` with the standard add-nothing idf.

    Terms occurring in every document get idf 0 and drop out of the
    vector; that matches the intersection-vector convention that absent
    terms carry weight 0.
    """

    name = "tfidf"

    def vector(self, tf: Mapping[int, int], vocab: Vocabulary) -> SparseVector:
        n_docs = max(vocab.doc_count, 1)
        weights = {}
        for tid, count in tf.items():
            if count <= 0:
                continue
            df = vocab.doc_frequency(tid)
            if df <= 0:
                # Term known to the vocabulary but present in no finished
                # document (e.g. a query-only term): treat as rare.
                df = 1
            idf = math.log(n_docs / df) if n_docs > df else 0.0
            w = count * idf
            if w > 0.0:
                weights[tid] = w
        return SparseVector(weights)


class LanguageModelWeighting(WeightingScheme):
    """Jelinek–Mercer smoothed unigram language model.

    ``p(t | d) = (1 - lam) * tf / |d| + lam * cf(t) / |C|``

    Only terms present in the document get a vector entry (the smoothing
    mass of absent terms is a constant offset shared by all documents and
    is irrelevant to relative ranking with sparse measures).
    """

    name = "lm"

    def __init__(self, lam: float = 0.2) -> None:
        if not 0.0 <= lam <= 1.0:
            raise ConfigError(f"lm lambda must be in [0, 1], got {lam}")
        self.lam = lam

    def vector(self, tf: Mapping[int, int], vocab: Vocabulary) -> SparseVector:
        doc_len = sum(c for c in tf.values() if c > 0)
        if doc_len == 0:
            return SparseVector.empty()
        coll_len = max(vocab.total_term_count, 1)
        weights = {}
        for tid, count in tf.items():
            if count <= 0:
                continue
            ml = count / doc_len
            bg = vocab.collection_frequency(tid) / coll_len
            w = (1.0 - self.lam) * ml + self.lam * bg
            if w > 0.0:
                weights[tid] = w
        return SparseVector(weights)


class BM25Weighting(WeightingScheme):
    """Okapi BM25 term weights.

    ``w(t, d) = idf(t) * tf * (k1 + 1) / (tf + k1 * (1 - b + b * |d|/avgdl))``

    with the non-negative idf variant ``log(1 + (N - df + 0.5)/(df + 0.5))``
    so weights stay positive (a :class:`SparseVector` requirement).
    """

    name = "bm25"

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0.0:
            raise ConfigError(f"bm25 k1 must be >= 0, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ConfigError(f"bm25 b must be in [0, 1], got {b}")
        self.k1 = k1
        self.b = b

    def vector(self, tf: Mapping[int, int], vocab: Vocabulary) -> SparseVector:
        n_docs = max(vocab.doc_count, 1)
        doc_len = sum(c for c in tf.values() if c > 0)
        avg_len = vocab.total_term_count / n_docs if vocab.total_term_count else 1.0
        if avg_len <= 0.0:
            avg_len = 1.0
        weights = {}
        for tid, count in tf.items():
            if count <= 0:
                continue
            df = max(vocab.doc_frequency(tid), 1)
            idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
            norm = count + self.k1 * (1.0 - self.b + self.b * doc_len / avg_len)
            w = idf * count * (self.k1 + 1.0) / norm
            if w > 0.0:
                weights[tid] = w
        return SparseVector(weights)


def make_weighting(name: str, lm_lambda: float = 0.2) -> WeightingScheme:
    """Factory mapping config names to scheme instances."""
    if name == "tf":
        return TfWeighting()
    if name == "tfidf":
        return TfIdfWeighting()
    if name == "lm":
        return LanguageModelWeighting(lm_lambda)
    if name == "bm25":
        return BM25Weighting()
    raise ConfigError(f"unknown weighting scheme {name!r}")
