"""Cluster-label entropy, the signal behind the TE traversal optimization.

A CIUR-tree node whose subtree mixes many text clusters has loose textual
bounds (its per-cluster envelopes cover heterogeneous documents), so the
searcher gains more from expanding it early.  The entropy of the node's
cluster-count histogram quantifies that mixing.
"""

from __future__ import annotations

import math
from typing import Mapping


def cluster_entropy(counts: Mapping[int, int]) -> float:
    """Shannon entropy (nats) of a cluster-count histogram.

    Zero counts are ignored; an empty or single-cluster histogram has
    entropy 0.  Raises ``ValueError`` on negative counts.
    """
    total = 0
    for c in counts.values():
        if c < 0:
            raise ValueError(f"cluster counts must be >= 0, got {c}")
        total += c
    if total == 0:
        return 0.0
    ent = 0.0
    for c in counts.values():
        if c == 0:
            continue
        p = c / total
        ent -= p * math.log(p)
    return ent


def normalized_cluster_entropy(counts: Mapping[int, int], num_clusters: int) -> float:
    """Entropy scaled to [0, 1] by the maximum ``log(num_clusters)``."""
    if num_clusters <= 1:
        return 0.0
    return cluster_entropy(counts) / math.log(num_clusters)
