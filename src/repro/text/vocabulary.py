"""Vocabulary: bidirectional term <-> id mapping with corpus statistics.

All vectors in the library are keyed by integer term ids; the vocabulary
owns the mapping plus the document frequencies and collection term counts
that the weighting schemes need.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import DatasetError


class Vocabulary:
    """Mutable during corpus construction, then effectively frozen.

    Attributes:
        doc_count: Number of documents folded in via :meth:`add_document`.
        total_term_count: Total token occurrences across the corpus (|C|
            in language-model smoothing).
    """

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        self._doc_freq: List[int] = []
        self._collection_freq: List[int] = []
        self.doc_count: int = 0
        self.total_term_count: int = 0

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def intern(self, term: str) -> int:
        """Return the id for ``term``, creating one if needed."""
        tid = self._term_to_id.get(term)
        if tid is None:
            tid = len(self._id_to_term)
            self._term_to_id[term] = tid
            self._id_to_term.append(term)
            self._doc_freq.append(0)
            self._collection_freq.append(0)
        return tid

    def add_document(self, terms: Iterable[str]) -> Dict[int, int]:
        """Fold one document into the statistics.

        Returns:
            The document's term-frequency map ``{term_id: tf}``.
        """
        tf: Dict[int, int] = {}
        for term in terms:
            tid = self.intern(term)
            tf[tid] = tf.get(tid, 0) + 1
            self._collection_freq[tid] += 1
            self.total_term_count += 1
        for tid in tf:
            self._doc_freq[tid] += 1
        self.doc_count += 1
        return tf

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def id_of(self, term: str) -> Optional[int]:
        """The id of ``term`` or ``None`` when unseen."""
        return self._term_to_id.get(term)

    def term_of(self, tid: int) -> str:
        """The term string for a known id."""
        try:
            return self._id_to_term[tid]
        except IndexError:
            raise DatasetError(f"unknown term id {tid}") from None

    def doc_frequency(self, tid: int) -> int:
        """Number of documents containing the term."""
        try:
            return self._doc_freq[tid]
        except IndexError:
            raise DatasetError(f"unknown term id {tid}") from None

    def collection_frequency(self, tid: int) -> int:
        """Total occurrences of the term across the corpus."""
        try:
            return self._collection_freq[tid]
        except IndexError:
            raise DatasetError(f"unknown term id {tid}") from None

    def terms(self) -> List[str]:
        """All known terms, by id order."""
        return list(self._id_to_term)
